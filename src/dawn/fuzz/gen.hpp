// Seeded generators for differential fuzzing: random machines over all
// seven {d,D}{a,A}{f,F} classes, random labelled graphs (the paper's
// families plus the degenerate shapes the convention excludes), and random
// schedules.
//
// Every generator is a pure function of an explicit Rng, so a fuzz case is
// reproducible from (seed, options) alone, and a MachineSpec rebuilds the
// same machine byte-for-byte on another host — the property the replay
// artifacts (fuzz/artifact.hpp) and the CI smoke job rely on.
//
// Generated machines are hash-transition machines: δ(q, N) is a splitmix
// hash of (spec.seed, q, N's sorted capped-count entries) reduced to the
// state range. This family is adversarial by construction — transitions
// have no structure for an engine shortcut to exploit — while staying pure
// (parallel_step_safe) and cheap. Class knobs:
//
//   * d vs D   — counting bound: β = 1 vs β in [2, 4];
//   * a vs A   — halting classes reserve absorbing accept/reject states
//                (once a node halts its verdict never changes; the class
//                validity test pins this), stable-consensus classes give
//                every state a hash-derived verdict;
//   * f vs F   — fairness is exercised by the schedules, not the machine;
//                the class tag records which schedule pools apply.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dawn/automata/classes.hpp"
#include "dawn/automata/config.hpp"
#include "dawn/automata/machine.hpp"
#include "dawn/graph/graph.hpp"
#include "dawn/util/rng.hpp"

namespace dawn::fuzz {

// A reproducible description of a generated machine. build_machine(spec) is
// deterministic: equal specs build machines with identical behaviour.
struct MachineSpec {
  AutomatonClass cls;
  int num_states = 4;
  int num_labels = 2;
  int beta = 1;  // 1 for d-classes, [2, 4] for D-classes
  std::uint64_t seed = 0;
  // Halting (a) classes only: states [0, halt_accept) are absorbing
  // accepting, [halt_accept, halt_accept + halt_reject) absorbing rejecting;
  // the rest are transient with verdict Neutral. Zero for A classes.
  int halt_accept = 0;
  int halt_reject = 0;

  bool operator==(const MachineSpec&) const = default;
};

// Materialises the spec as a pure FunctionMachine (parallel_step_safe).
std::shared_ptr<Machine> build_machine(const MachineSpec& spec);

struct MachineGenOptions {
  int min_states = 3;
  int max_states = 6;
  int max_labels = 3;
};

// A random spec; the class is drawn uniformly from all_classes().
MachineSpec gen_machine(Rng& rng, const MachineGenOptions& opts = {});

// The degenerate shapes are the point: the paper convention (connected,
// n >= 3, simple) is deliberately not enforced, because the engines must
// agree on out-of-convention inputs too.
struct GraphGenOptions {
  int min_nodes = 1;
  int max_nodes = 10;
  int num_labels = 2;
};

struct FuzzGraph {
  Graph graph;
  std::string shape;  // "single-node", "edgeless", "disconnected", ...
};

FuzzGraph gen_graph(Rng& rng, const GraphGenOptions& opts = {});

// A random finite schedule over n nodes: a mix of singleton, random-subset
// and full-V selections, padded so every node is selected at least once
// (cycling the window through sched/replay then yields a fair schedule).
// Every selection is nonempty. Requires n >= 1 and len >= 1.
std::vector<Selection> gen_schedule(Rng& rng, int n, int len);

// One generated differential input: a machine, a graph over an alphabet the
// machine understands, and a schedule covering the graph's nodes.
struct FuzzCase {
  MachineSpec machine;
  Graph graph;
  std::string shape;
  std::vector<Selection> schedule;
};

struct CaseGenOptions {
  MachineGenOptions machine;
  GraphGenOptions graph;
  // Schedule length is drawn from [n, n * max_schedule_factor].
  int max_schedule_factor = 4;
};

FuzzCase gen_case(Rng& rng, const CaseGenOptions& opts = {});

}  // namespace dawn::fuzz
