#include "dawn/fuzz/oracle.hpp"

#include <sstream>

#include "dawn/automata/run.hpp"
#include "dawn/sched/replay.hpp"
#include "dawn/sched/scheduler.hpp"
#include "dawn/semantics/clique_counted.hpp"
#include "dawn/semantics/decision.hpp"
#include "dawn/semantics/explicit_space.hpp"
#include "dawn/semantics/batched_trials.hpp"
#include "dawn/semantics/simulate.hpp"
#include "dawn/semantics/star_counted.hpp"
#include "dawn/semantics/sync_run.hpp"
#include "dawn/semantics/trials.hpp"

namespace dawn::fuzz {
namespace {

// Budgets chosen so a smoke run (a few hundred cases) stays in seconds:
// the decider pairs only fire on small state spaces, and the run-based
// pairs are linear in the schedule length.
constexpr std::size_t kSpaceCap = 60'000;     // |Q|^n bound for decider pairs
constexpr std::size_t kConfigBudget = 120'000;
constexpr std::uint64_t kSyncStepCap = 20'000;
constexpr std::uint64_t kSimSteps = 2'000;
constexpr std::uint64_t kSimWindow = 200;

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::Accept: return "accept";
    case Verdict::Reject: return "reject";
    case Verdict::Neutral: return "neutral";
  }
  return "?";
}

// Saturating |Q|^n, used to keep the explicit decider off huge spaces.
std::size_t space_size(const FuzzCase& c) {
  std::size_t space = 1;
  for (int i = 0; i < c.graph.n(); ++i) {
    if (space > kSpaceCap) return kSpaceCap + 1;
    space *= static_cast<std::size_t>(c.machine.num_states);
  }
  return space;
}

bool small_space(const FuzzCase& c) { return space_size(c) <= kSpaceCap; }

bool is_clique_graph(const Graph& g) {
  if (g.n() < 2) return false;
  for (NodeId v = 0; v < g.n(); ++v) {
    if (g.degree(v) != g.n() - 1) return false;
  }
  return true;
}

// The unique hub adjacent to every other node, all leaves; -1 otherwise.
NodeId star_hub(const Graph& g) {
  if (g.n() < 2) return -1;
  NodeId hub = -1;
  for (NodeId v = 0; v < g.n(); ++v) {
    if (g.degree(v) == g.n() - 1) {
      if (hub >= 0) return -1;
      hub = v;
    } else if (g.degree(v) != 1) {
      return -1;
    }
  }
  return hub;
}

ExploreBudget sequential_budget() {
  return {.max_configs = kConfigBudget, .max_threads = 1, .deadline_ms = 0};
}

// -------------------------------------------------------------------------
// step-engine: FullCopy vs Incremental, lock-step over the schedule (two
// cycles, so the wrap-around of a replayed window is exercised too).

std::optional<std::string> check_step_engine(const FuzzCase& c) {
  const auto machine = build_machine(c.machine);
  Run incremental(*machine, c.graph, StepEngine::Incremental);
  Run reference(*machine, c.graph, StepEngine::FullCopy);
  const std::size_t len = c.schedule.size();
  for (std::size_t t = 0; t < 2 * len; ++t) {
    const Selection& sel = c.schedule[t % len];
    incremental.apply(sel);
    reference.apply(sel);
    const auto diverged = [&](const char* what) {
      std::ostringstream out;
      out << "engines diverged at step " << t << " (" << what << ")";
      return out.str();
    };
    if (incremental.config() != reference.config()) return diverged("config");
    if (incremental.current_consensus() != reference.current_consensus()) {
      return diverged("consensus");
    }
    if (incremental.consensus_held_for() != reference.consensus_held_for()) {
      return diverged("consensus_held_for");
    }
    if (incremental.last_change_step() != reference.last_change_step()) {
      return diverged("last_change_step");
    }
    if (incremental.commits() != reference.commits()) {
      return diverged("commits");
    }
    if (incremental.last_step_commits() != reference.last_step_commits()) {
      return diverged("last_step_commits");
    }
  }
  return std::nullopt;
}

// -------------------------------------------------------------------------
// record-replay: a run recorded through sched/replay must re-execute
// bit-identically from its recording alone.

std::optional<std::string> check_record_replay(const FuzzCase& c) {
  const auto machine = build_machine(c.machine);
  SimulateOptions opts;
  opts.max_steps = kSimSteps;
  opts.stable_window = kSimWindow;
  auto inner = std::make_shared<RandomExclusiveScheduler>(c.machine.seed);
  RecordingScheduler recorder(inner);
  const SimulateResult original = simulate(*machine, c.graph, recorder, opts);
  ReplayScheduler replay(recorder.recording());
  const SimulateResult replayed = simulate(*machine, c.graph, replay, opts);
  if (original == replayed) return std::nullopt;
  std::ostringstream out;
  out << "replayed run differs: original(converged=" << original.converged
      << ", verdict=" << verdict_name(original.verdict)
      << ", steps=" << original.total_steps << ") replay(converged="
      << replayed.converged << ", verdict=" << verdict_name(replayed.verdict)
      << ", steps=" << replayed.total_steps << ")";
  return out.str();
}

// -------------------------------------------------------------------------
// sync-replay: decide_synchronous detects the limit cycle with its own
// stepping loop (successor via Neighbourhood::of_into, hash-map cycle
// detection). Re-derive the classification through the Run engine driven by
// the replayed synchronous schedule: after prefix_length steps the run must
// be on the cycle, the cycle must close after cycle_length more steps, and
// the per-configuration consensus over one traversal must reproduce the
// decision.

std::optional<std::string> check_sync_replay(const FuzzCase& c) {
  const auto machine = build_machine(c.machine);
  const SyncResult sync = decide_synchronous(*machine, c.graph, kSyncStepCap);
  if (sync.decision == Decision::Unknown) return std::nullopt;  // capped
  Selection everyone;
  for (NodeId v = 0; v < c.graph.n(); ++v) everyone.push_back(v);
  Run run(*machine, c.graph, StepEngine::Incremental);
  for (std::uint64_t t = 0; t < sync.prefix_length; ++t) run.apply(everyone);
  const Config at_cycle_entry = run.config();
  bool all_accepting = true;
  bool all_rejecting = true;
  for (std::uint64_t i = 0; i < sync.cycle_length; ++i) {
    const Verdict v = run.current_consensus();
    if (v != Verdict::Accept) all_accepting = false;
    if (v != Verdict::Reject) all_rejecting = false;
    run.apply(everyone);
  }
  if (run.config() != at_cycle_entry) {
    std::ostringstream out;
    out << "synchronous cycle did not close under Run: prefix="
        << sync.prefix_length << " cycle=" << sync.cycle_length;
    return out.str();
  }
  const Decision replayed = all_accepting    ? Decision::Accept
                            : all_rejecting ? Decision::Reject
                                            : Decision::Inconsistent;
  if (replayed == sync.decision) return std::nullopt;
  std::ostringstream out;
  out << "cycle classification differs: decide_synchronous="
      << to_string(sync.decision) << " replayed-run=" << to_string(replayed)
      << " (prefix=" << sync.prefix_length << ", cycle=" << sync.cycle_length
      << ")";
  return out.str();
}

// -------------------------------------------------------------------------
// explore-par: the sequential explicit decider vs the frontier-parallel
// sharded engine at 1, 2 and 8 threads. Completed runs must agree on
// everything; capped runs on (decision, reason) with the parallel count
// clamped to the cap.

std::optional<std::string> check_explore_par(const FuzzCase& c) {
  const auto machine = build_machine(c.machine);
  const ExplicitResult seq =
      decide_pseudo_stochastic(*machine, c.graph, sequential_budget());
  for (const int threads : {1, 2, 8}) {
    ExploreBudget budget = sequential_budget();
    budget.max_threads = threads;
    const ExplicitResult par =
        decide_pseudo_stochastic_parallel(*machine, c.graph, budget);
    std::ostringstream out;
    out << "parallel(" << threads << " threads) vs sequential: ";
    if (par.decision != seq.decision || par.reason != seq.reason) {
      out << "decision " << to_string(par.decision) << "/"
          << to_string(par.reason) << " vs " << to_string(seq.decision) << "/"
          << to_string(seq.reason);
      return out.str();
    }
    if (seq.decision == Decision::Unknown) continue;  // counts may differ
    if (par.num_configs != seq.num_configs) {
      out << "num_configs " << par.num_configs << " vs " << seq.num_configs;
      return out.str();
    }
    if (par.num_bottom_sccs != seq.num_bottom_sccs) {
      out << "num_bottom_sccs " << par.num_bottom_sccs << " vs "
          << seq.num_bottom_sccs;
      return out.str();
    }
  }
  return std::nullopt;
}

// -------------------------------------------------------------------------
// canonical-vs-plain: the plain parallel explicit engine vs the same engine
// with symmetry reduction + bit packing enabled. The reduced run explores a
// quotient, so counts are only ordered (orbits <= configurations) but the
// decision must be identical; both runs use the same budget, and a capped
// side makes the case incomparable (the quotient can finish where the plain
// space caps out).

std::optional<std::string> check_canonical_vs_plain(const FuzzCase& c) {
  const auto machine = build_machine(c.machine);
  const ExplicitResult plain =
      decide_pseudo_stochastic_parallel(*machine, c.graph, sequential_budget());
  ExploreBudget reduced_budget = sequential_budget();
  reduced_budget.max_threads = 2;
  reduced_budget.use_symmetry = true;
  reduced_budget.use_packing = true;
  const ExplicitResult reduced =
      decide_pseudo_stochastic_parallel(*machine, c.graph, reduced_budget);
  if (!reduced.packed_store) {
    return std::string("fuzz machines advertise num_states(); the packed "
                       "store should always engage");
  }
  if (plain.decision == Decision::Unknown ||
      reduced.decision == Decision::Unknown) {
    return std::nullopt;  // one side capped: not comparable
  }
  std::ostringstream out;
  if (reduced.decision != plain.decision) {
    out << "plain=" << to_string(plain.decision)
        << " canonical=" << to_string(reduced.decision)
        << (reduced.symmetry_reduced ? " (reduced)" : " (group trivial)");
    return out.str();
  }
  if (reduced.num_configs > plain.num_configs) {
    out << "quotient larger than the full space: canonical="
        << reduced.num_configs << " plain=" << plain.num_configs;
    return out.str();
  }
  if (!reduced.symmetry_reduced && reduced.num_configs != plain.num_configs) {
    out << "trivial group but counts differ: canonical=" << reduced.num_configs
        << " plain=" << plain.num_configs;
    return out.str();
  }
  return std::nullopt;
}

// -------------------------------------------------------------------------
// tiered-vs-inmemory: the in-memory parallel explicit engine vs the
// out-of-core tiered store. The byte budget is calibrated from the
// in-memory run's config count so the tiered side is forced through its
// spill path on any nontrivial case while its always-resident index still
// fits (the packed words dominate the budget, the index alone does not).
// Completed runs must agree on everything; a tiered MemoryCap (the case's
// index outgrew even the calibrated budget) makes the case incomparable.

std::optional<std::string> check_tiered_vs_inmemory(const FuzzCase& c) {
  const auto machine = build_machine(c.machine);
  const ExplicitResult mem =
      decide_pseudo_stochastic_parallel(*machine, c.graph, sequential_budget());
  if (mem.decision == Decision::Unknown) {
    return std::nullopt;  // capped: no count to calibrate the byte budget on
  }
  ExploreBudget tiered_budget = sequential_budget();
  tiered_budget.max_threads = 2;
  tiered_budget.max_store_bytes = 5120 + 18 * mem.num_configs;
  tiered_budget.spill_dir = "/tmp";
  const ExplicitResult tiered =
      decide_pseudo_stochastic_parallel(*machine, c.graph, tiered_budget);
  if (!tiered.tiered_store) {
    return std::string("tiered store did not engage (spill dir unusable?)");
  }
  if (tiered.decision == Decision::Unknown &&
      tiered.reason == UnknownReason::MemoryCap) {
    return std::nullopt;  // resident index over budget: incomparable
  }
  std::ostringstream out;
  out << "tiered vs in-memory: ";
  if (tiered.decision != mem.decision || tiered.reason != mem.reason) {
    out << "decision " << to_string(tiered.decision) << "/"
        << to_string(tiered.reason) << " vs " << to_string(mem.decision)
        << "/" << to_string(mem.reason);
    return out.str();
  }
  if (tiered.num_configs != mem.num_configs) {
    out << "num_configs " << tiered.num_configs << " vs " << mem.num_configs;
    return out.str();
  }
  if (tiered.num_bottom_sccs != mem.num_bottom_sccs) {
    out << "num_bottom_sccs " << tiered.num_bottom_sccs << " vs "
        << mem.num_bottom_sccs;
    return out.str();
  }
  return std::nullopt;
}

// -------------------------------------------------------------------------
// clique-counted / star-counted: the explicit decider on the concrete graph
// vs the counted-configuration quotient. The spaces (and budgets) differ,
// so only decisions are comparable, and only when both sides completed.

std::optional<std::string> check_clique_counted(const FuzzCase& c) {
  const auto machine = build_machine(c.machine);
  const ExplicitResult ex =
      decide_pseudo_stochastic(*machine, c.graph, sequential_budget());
  const LabelCount L = c.graph.label_count(c.machine.num_labels);
  const CliqueResult counted =
      decide_clique_pseudo_stochastic(*machine, L, sequential_budget());
  if (ex.decision == Decision::Unknown ||
      counted.decision == Decision::Unknown) {
    return std::nullopt;  // one side capped: not comparable
  }
  if (ex.decision == counted.decision) return std::nullopt;
  std::ostringstream out;
  out << "explicit=" << to_string(ex.decision)
      << " counted-clique=" << to_string(counted.decision);
  return out.str();
}

std::optional<std::string> check_star_counted(const FuzzCase& c) {
  const auto machine = build_machine(c.machine);
  const NodeId hub = star_hub(c.graph);
  std::vector<Label> leaves;
  for (NodeId v = 0; v < c.graph.n(); ++v) {
    if (v != hub) leaves.push_back(c.graph.label(v));
  }
  const ExplicitResult ex =
      decide_pseudo_stochastic(*machine, c.graph, sequential_budget());
  const StarResult counted = decide_star_pseudo_stochastic(
      *machine, c.graph.label(hub), leaves, sequential_budget());
  if (ex.decision == Decision::Unknown ||
      counted.decision == Decision::Unknown) {
    return std::nullopt;
  }
  if (ex.decision == counted.decision) return std::nullopt;
  std::ostringstream out;
  out << "explicit=" << to_string(ex.decision)
      << " counted-star=" << to_string(counted.decision);
  return out.str();
}

// -------------------------------------------------------------------------
// auto-crosscheck: the facade's built-in differential pin (parallel engine
// vs its sequential reference, on whichever backend Auto picks) must never
// fire.

std::optional<std::string> check_auto_crosscheck(const FuzzCase& c) {
  const auto machine = build_machine(c.machine);
  DecisionRequest req;
  req.method = DecideMethod::Auto;
  req.budget = {.max_configs = kConfigBudget, .max_threads = 2,
                .deadline_ms = 0};
  req.cross_check = true;
  const DecisionReport r = decide(*machine, c.graph, req);
  if (r.unknown_reason != UnknownReason::CrossCheck) return std::nullopt;
  return "decide(Auto, cross_check) reported a parallel/sequential mismatch "
         "via " +
         to_string(r.method);
}

// -------------------------------------------------------------------------
// scalar-vs-batched: the per-trial scalar runner vs the SoA batched trial
// engine, across every lockstep scheduler family. Fuzz machines are pure
// enumerable FunctionMachines, so they must always qualify — a nullopt from
// the batched path is itself a divergence.

std::optional<std::string> check_scalar_vs_batched(const FuzzCase& c) {
  const MachineFactory machine = [&c] { return build_machine(c.machine); };
  struct Family {
    const char* name;
    SchedulerFactory factory;
  };
  std::vector<Family> families;
  families.push_back({"exclusive", [](std::uint64_t seed) {
                        return std::make_unique<RandomExclusiveScheduler>(seed);
                      }});
  families.push_back({"round-robin", [](std::uint64_t) {
                        return std::make_unique<RoundRobinScheduler>();
                      }});
  families.push_back({"synchronous", [](std::uint64_t) {
                        return std::make_unique<SynchronousScheduler>();
                      }});
  if (c.graph.n() >= 2) {
    // Starvation requires a non-victim to rotate through.
    families.push_back({"starvation", [](std::uint64_t) {
                          return std::make_unique<StarvationScheduler>(0, 4);
                        }});
  }
  TrialOptions opts;
  opts.num_trials = 12;
  opts.num_threads = 1;
  opts.base_seed = c.machine.seed;
  opts.batch_width = 8;  // 12 trials -> one full block, one partial
  opts.sim.max_steps = kSimSteps;
  opts.sim.stable_window = kSimWindow;
  opts.sim.collect_metrics = true;
  for (const auto& family : families) {
    auto scalar_opts = opts;
    scalar_opts.batch = TrialBatch::Off;
    const auto scalar = run_trials(machine, c.graph, family.factory,
                                   scalar_opts);
    const auto batched =
        try_run_trials_batched(machine, c.graph, family.factory, opts);
    if (!batched.has_value()) {
      return family.name +
             std::string(": fuzz machine failed to qualify for batching: ") +
             batched_trials_disqualifier(machine, c.graph, family.factory,
                                         opts);
    }
    for (std::size_t i = 0; i < scalar.size(); ++i) {
      const SimulateResult& s = scalar[i].result;
      const SimulateResult& b = (*batched)[i].result;
      if (s.converged != b.converged || s.verdict != b.verdict ||
          s.convergence_step != b.convergence_step ||
          s.total_steps != b.total_steps ||
          !s.metrics.deterministic_equal(b.metrics)) {
        std::ostringstream out;
        out << family.name << " trial " << i << ": scalar(converged="
            << s.converged << ", verdict=" << verdict_name(s.verdict)
            << ", conv_step=" << s.convergence_step
            << ", steps=" << s.total_steps << ") batched(converged="
            << b.converged << ", verdict=" << verdict_name(b.verdict)
            << ", conv_step=" << b.convergence_step
            << ", steps=" << b.total_steps << ")"
            << (s.metrics.deterministic_equal(b.metrics)
                    ? ""
                    : " [metrics diverged]");
        return out.str();
      }
    }
    // Summary-level parity too: summarize() folds metrics in trial order,
    // so the merged TrialSummary must also match bit-for-bit (the per-trial
    // loop above would miss a summarize() bug).
    const TrialSummary ss = summarize(scalar);
    const TrialSummary bs = summarize(*batched);
    if (ss.converged != bs.converged || ss.accepted != bs.accepted ||
        ss.rejected != bs.rejected ||
        ss.max_total_steps != bs.max_total_steps ||
        ss.mean_convergence_step != bs.mean_convergence_step ||
        !ss.metrics.deterministic_equal(bs.metrics)) {
      std::ostringstream out;
      out << family.name << ": TrialSummary diverged: scalar(converged="
          << ss.converged << ", accepted=" << ss.accepted
          << ", rejected=" << ss.rejected
          << ", max_steps=" << ss.max_total_steps
          << ", mean_conv=" << ss.mean_convergence_step
          << ") batched(converged=" << bs.converged
          << ", accepted=" << bs.accepted << ", rejected=" << bs.rejected
          << ", max_steps=" << bs.max_total_steps
          << ", mean_conv=" << bs.mean_convergence_step << ")"
          << (ss.metrics.deterministic_equal(bs.metrics)
                  ? ""
                  : " [merged metrics diverged]");
      return out.str();
    }
  }
  return std::nullopt;
}

std::vector<OraclePair> build_registry() {
  const auto always = [](const FuzzCase&) { return true; };
  const auto small = [](const FuzzCase& c) { return small_space(c); };
  std::vector<OraclePair> pairs;
  pairs.push_back({"step-engine",
                   "FullCopy vs Incremental Run, lock-step over the schedule",
                   always, check_step_engine});
  pairs.push_back({"record-replay",
                   "a recorded random run vs its sched/replay re-execution",
                   always, check_record_replay});
  pairs.push_back({"sync-replay",
                   "decide_synchronous vs the Run engine on the replayed "
                   "synchronous schedule",
                   always, check_sync_replay});
  pairs.push_back({"explore-par",
                   "sequential explicit decider vs the sharded parallel "
                   "engine at 1/2/8 threads",
                   small, check_explore_par});
  pairs.push_back({"canonical-vs-plain",
                   "plain parallel explicit engine vs symmetry-reduced + "
                   "bit-packed exploration",
                   small, check_canonical_vs_plain});
  pairs.push_back({"tiered-vs-inmemory",
                   "in-memory parallel explicit engine vs the out-of-core "
                   "tiered store under a spill-forcing byte budget",
                   small, check_tiered_vs_inmemory});
  pairs.push_back(
      {"clique-counted",
       "explicit decider vs the counted-configuration decider on cliques",
       [](const FuzzCase& c) {
         return small_space(c) && is_clique_graph(c.graph);
       },
       check_clique_counted});
  pairs.push_back(
      {"star-counted",
       "explicit decider vs the counted-configuration decider on stars",
       [](const FuzzCase& c) {
         return small_space(c) && star_hub(c.graph) >= 0;
       },
       check_star_counted});
  pairs.push_back({"auto-crosscheck",
                   "decide(Auto) with its built-in parallel/sequential "
                   "cross-check enabled",
                   small, check_auto_crosscheck});
  pairs.push_back({"scalar-vs-batched",
                   "scalar run_trials vs the SoA batched trial engine "
                   "across the lockstep scheduler families",
                   always, check_scalar_vs_batched});
  return pairs;
}

}  // namespace

const std::vector<OraclePair>& oracle_pairs() {
  static const std::vector<OraclePair> registry = build_registry();
  return registry;
}

const OraclePair* find_pair(const std::string& name) {
  for (const OraclePair& pair : oracle_pairs()) {
    if (pair.name == name) return &pair;
  }
  return nullptr;
}

}  // namespace dawn::fuzz
