#include "dawn/fuzz/shrink.hpp"

#include <algorithm>

#include "dawn/util/check.hpp"

namespace dawn::fuzz {
namespace {

struct Budget {
  int remaining;
  bool spent() const { return remaining <= 0; }
  bool charge() {
    if (remaining <= 0) return false;
    --remaining;
    return true;
  }
};

bool try_case(const FuzzCase& candidate, const StillDiverges& fails,
              Budget& budget) {
  if (!budget.charge()) return false;
  return fails(candidate);
}

// Schedule after deleting node v from the graph: v disappears from every
// selection, selections that become empty are dropped, ids above v shift
// down. Returns an empty schedule if nothing survives (caller rejects).
std::vector<Selection> remap_schedule(const std::vector<Selection>& schedule,
                                      NodeId v) {
  std::vector<Selection> out;
  out.reserve(schedule.size());
  for (const Selection& sel : schedule) {
    Selection mapped;
    mapped.reserve(sel.size());
    for (NodeId u : sel) {
      if (u == v) continue;
      mapped.push_back(u > v ? u - 1 : u);
    }
    if (!mapped.empty()) out.push_back(std::move(mapped));
  }
  return out;
}

// One pass of every move family; returns true if any move stuck.
bool shrink_round(FuzzCase& c, const StillDiverges& fails, Budget& budget) {
  bool progressed = false;

  // Move 1: halve the schedule (coarse), then drop single selections (fine,
  // back to front so indices stay valid).
  while (c.schedule.size() >= 2 && !budget.spent()) {
    FuzzCase candidate = c;
    candidate.schedule.resize(c.schedule.size() / 2);
    if (!try_case(candidate, fails, budget)) break;
    c = std::move(candidate);
    progressed = true;
  }
  for (std::size_t i = c.schedule.size(); i-- > 0 && !budget.spent();) {
    if (c.schedule.size() <= 1) break;
    FuzzCase candidate = c;
    candidate.schedule.erase(candidate.schedule.begin() +
                             static_cast<std::ptrdiff_t>(i));
    if (try_case(candidate, fails, budget)) {
      c = std::move(candidate);
      progressed = true;
    }
  }

  // Move 2: thin multi-node selections one node at a time.
  for (std::size_t i = 0; i < c.schedule.size() && !budget.spent(); ++i) {
    for (std::size_t j = c.schedule[i].size(); j-- > 0 && !budget.spent();) {
      if (c.schedule[i].size() <= 1) break;
      FuzzCase candidate = c;
      candidate.schedule[i].erase(candidate.schedule[i].begin() +
                                  static_cast<std::ptrdiff_t>(j));
      if (try_case(candidate, fails, budget)) {
        c = std::move(candidate);
        progressed = true;
      }
    }
  }

  // Move 3: delete graph nodes (highest id first: cheaper remaps).
  for (NodeId v = c.graph.n(); v-- > 0 && !budget.spent();) {
    if (c.graph.n() <= 1) break;
    FuzzCase candidate = c;
    candidate.graph = remove_graph_node(c.graph, v);
    candidate.schedule = remap_schedule(c.schedule, v);
    if (candidate.schedule.empty()) continue;
    candidate.shape = "shrunk";
    if (try_case(candidate, fails, budget)) {
      c = std::move(candidate);
      progressed = true;
    }
  }

  // Move 4: push labels toward 0 (the artifact reads better and the machine
  // init table shrinks to one row when it sticks everywhere).
  for (NodeId v = 0; v < c.graph.n() && !budget.spent(); ++v) {
    if (c.graph.label(v) == 0) continue;
    FuzzCase candidate = c;
    std::vector<std::vector<NodeId>> adjacency;
    std::vector<Label> labels;
    for (NodeId u = 0; u < c.graph.n(); ++u) {
      const auto nbrs = c.graph.neighbours(u);
      adjacency.emplace_back(nbrs.begin(), nbrs.end());
      labels.push_back(u == v ? 0 : c.graph.label(u));
    }
    candidate.graph = Graph(std::move(adjacency), std::move(labels));
    if (try_case(candidate, fails, budget)) {
      c = std::move(candidate);
      progressed = true;
    }
  }

  // Move 5: drop machine states. The hash transition reshuffles completely
  // under a smaller range, so this rarely sticks — but when it does the
  // machine table shrinks by a full row.
  while (c.machine.num_states > 2 && !budget.spent()) {
    FuzzCase candidate = c;
    --candidate.machine.num_states;
    const int halting =
        candidate.machine.halt_accept + candidate.machine.halt_reject;
    if (halting >= candidate.machine.num_states) {
      // Keep one transient state; prefer trimming the reject block.
      if (candidate.machine.halt_reject > 1) {
        --candidate.machine.halt_reject;
      } else if (candidate.machine.halt_accept > 1) {
        --candidate.machine.halt_accept;
      } else {
        break;  // 1 + 1 halting states cannot shrink further
      }
    }
    if (!try_case(candidate, fails, budget)) break;
    c = std::move(candidate);
    progressed = true;
  }

  return progressed;
}

}  // namespace

Graph remove_graph_node(const Graph& g, NodeId v) {
  DAWN_CHECK(v >= 0 && v < g.n());
  GraphBuilder b;
  for (NodeId u = 0; u < g.n(); ++u) {
    if (u != v) b.add_node(g.label(u));
  }
  const auto remap = [v](NodeId u) { return u > v ? u - 1 : u; };
  for (NodeId u = 0; u < g.n(); ++u) {
    if (u == v) continue;
    for (NodeId w : g.neighbours(u)) {
      if (w == v || w <= u) continue;  // each edge once, skip the victim
      b.add_edge(remap(u), remap(w));
    }
  }
  return std::move(b).build();
}

FuzzCase shrink_case(FuzzCase c, const StillDiverges& fails,
                     const ShrinkOptions& opts) {
  Budget budget{opts.max_evaluations};
  while (!budget.spent()) {
    if (!shrink_round(c, fails, budget)) break;
  }
  return c;
}

}  // namespace dawn::fuzz
