#include "dawn/fuzz/artifact.hpp"

#include <fstream>
#include <initializer_list>
#include <sstream>

#include "dawn/sched/replay.hpp"
#include "dawn/semantics/simulate.hpp"

namespace dawn::fuzz {
namespace {

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr && error->empty()) *error = what;
  return false;
}

const obs::JsonValue* require(const obs::JsonValue& v, const char* key,
                              obs::JsonValue::Kind kind, std::string* error) {
  const obs::JsonValue* field = v.get(key);
  if (field == nullptr || field->kind() != kind) {
    fail(error, std::string("missing or mistyped field: ") + key);
    return nullptr;
  }
  return field;
}

// Strict-schema guard: every member key must appear in `allowed`. Unknown
// keys are a named error, never silently dropped — a request written against
// a future schema revision must fail loudly, not half-apply.
bool reject_unknown_keys(const obs::JsonValue& v,
                         std::initializer_list<const char*> allowed,
                         std::string* error) {
  for (const auto& [key, value] : v.members()) {
    bool known = false;
    for (const char* a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) return fail(error, "unknown top-level key: " + key);
  }
  return true;
}

// Checks the document's "spec_version" is present and a version this build
// understands. Shared by case_from_json and the dawnd payload parser.
bool check_spec_version(const obs::JsonValue& v, std::string* error) {
  const obs::JsonValue* field =
      require(v, "spec_version", obs::JsonValue::Kind::Int, error);
  if (field == nullptr) return false;
  if (field->as_int() != kSpecVersion) {
    return fail(error,
                "unknown spec_version: " + std::to_string(field->as_int()));
  }
  return true;
}

std::optional<FuzzCase> case_from_json_impl(
    const obs::JsonValue& v, std::string* error,
    std::initializer_list<const char*> allowed);

}  // namespace

std::optional<AutomatonClass> class_from_name(const std::string& name) {
  if (name.size() != 3) return std::nullopt;
  AutomatonClass cls;
  if (name[0] == 'd') cls.detection = DetectionKind::NonCounting;
  else if (name[0] == 'D') cls.detection = DetectionKind::Counting;
  else return std::nullopt;
  if (name[1] == 'a') cls.acceptance = AcceptanceKind::Halting;
  else if (name[1] == 'A') cls.acceptance = AcceptanceKind::StableConsensus;
  else return std::nullopt;
  if (name[2] == 'f') cls.fairness = FairnessKind::Adversarial;
  else if (name[2] == 'F') cls.fairness = FairnessKind::PseudoStochastic;
  else return std::nullopt;
  return cls;
}

obs::JsonValue machine_spec_to_json(const MachineSpec& spec) {
  obs::JsonValue machine = obs::JsonValue::object();
  machine.set("class", obs::JsonValue(spec.cls.name()));
  machine.set("states", obs::JsonValue(spec.num_states));
  machine.set("labels", obs::JsonValue(spec.num_labels));
  machine.set("beta", obs::JsonValue(spec.beta));
  machine.set("seed", obs::JsonValue(spec.seed));
  machine.set("halt_accept", obs::JsonValue(spec.halt_accept));
  machine.set("halt_reject", obs::JsonValue(spec.halt_reject));
  return machine;
}

std::optional<MachineSpec> machine_spec_from_json(const obs::JsonValue& v,
                                                  std::string* error) {
  using Kind = obs::JsonValue::Kind;
  if (v.kind() != Kind::Object) {
    fail(error, "machine must be an object");
    return std::nullopt;
  }
  if (!reject_unknown_keys(v,
                           {"class", "states", "labels", "beta", "seed",
                            "halt_accept", "halt_reject"},
                           error)) {
    return std::nullopt;
  }
  MachineSpec spec;
  const obs::JsonValue* cls = require(v, "class", Kind::String, error);
  if (cls == nullptr) return std::nullopt;
  const auto parsed_cls = class_from_name(cls->as_string());
  if (!parsed_cls) {
    fail(error, "bad machine class: " + cls->as_string());
    return std::nullopt;
  }
  spec.cls = *parsed_cls;
  for (const auto& [key, dst] :
       std::vector<std::pair<const char*, int*>>{
           {"states", &spec.num_states},
           {"labels", &spec.num_labels},
           {"beta", &spec.beta},
           {"halt_accept", &spec.halt_accept},
           {"halt_reject", &spec.halt_reject}}) {
    const obs::JsonValue* field = require(v, key, Kind::Int, error);
    if (field == nullptr) return std::nullopt;
    *dst = static_cast<int>(field->as_int());
  }
  const obs::JsonValue* seed = require(v, "seed", Kind::Int, error);
  if (seed == nullptr) return std::nullopt;
  spec.seed = static_cast<std::uint64_t>(seed->as_int());
  return spec;
}

obs::JsonValue graph_to_json(const Graph& g) {
  obs::JsonValue graph = obs::JsonValue::object();
  obs::JsonValue labels = obs::JsonValue::array();
  for (NodeId v = 0; v < g.n(); ++v) {
    labels.push_back(obs::JsonValue(g.label(v)));
  }
  graph.set("labels", std::move(labels));
  obs::JsonValue edges = obs::JsonValue::array();
  for (NodeId v = 0; v < g.n(); ++v) {
    for (NodeId u : g.neighbours(v)) {
      if (v < u) {
        obs::JsonValue edge = obs::JsonValue::array();
        edge.push_back(obs::JsonValue(v));
        edge.push_back(obs::JsonValue(u));
        edges.push_back(std::move(edge));
      }
    }
  }
  graph.set("edges", std::move(edges));
  return graph;
}

std::optional<Graph> graph_from_json(const obs::JsonValue& v,
                                     std::string* error) {
  using Kind = obs::JsonValue::Kind;
  if (v.kind() != Kind::Object) {
    fail(error, "graph must be an object");
    return std::nullopt;
  }
  if (!reject_unknown_keys(v, {"labels", "edges"}, error)) return std::nullopt;
  const obs::JsonValue* labels = require(v, "labels", Kind::Array, error);
  const obs::JsonValue* edges = require(v, "edges", Kind::Array, error);
  if (labels == nullptr || edges == nullptr) return std::nullopt;
  GraphBuilder b;
  for (std::size_t i = 0; i < labels->size(); ++i) {
    if (labels->at(i).kind() != Kind::Int) {
      fail(error, "graph labels must be integers");
      return std::nullopt;
    }
    b.add_node(static_cast<Label>(labels->at(i).as_int()));
  }
  const auto n = static_cast<std::int64_t>(labels->size());
  for (std::size_t i = 0; i < edges->size(); ++i) {
    const obs::JsonValue& edge = edges->at(i);
    if (edge.kind() != Kind::Array || edge.size() != 2 ||
        edge.at(0).kind() != Kind::Int || edge.at(1).kind() != Kind::Int) {
      fail(error, "bad edge entry");
      return std::nullopt;
    }
    const std::int64_t a = edge.at(0).as_int();
    const std::int64_t bb = edge.at(1).as_int();
    if (a < 0 || a >= n || bb < 0 || bb >= n || a == bb) {
      fail(error, "edge endpoint out of range");
      return std::nullopt;
    }
    b.add_edge(static_cast<NodeId>(a), static_cast<NodeId>(bb));
  }
  return std::move(b).build();
}

obs::JsonValue case_to_json(const FuzzCase& c) {
  obs::JsonValue out = obs::JsonValue::object();
  out.set("spec_version", obs::JsonValue(kSpecVersion));
  out.set("machine", machine_spec_to_json(c.machine));
  out.set("graph", graph_to_json(c.graph));
  out.set("shape", obs::JsonValue(c.shape));

  obs::JsonValue schedule = obs::JsonValue::array();
  for (const Selection& sel : c.schedule) {
    obs::JsonValue step = obs::JsonValue::array();
    for (NodeId v : sel) step.push_back(obs::JsonValue(v));
    schedule.push_back(std::move(step));
  }
  out.set("schedule", std::move(schedule));
  return out;
}

namespace {

std::optional<FuzzCase> case_from_json_impl(
    const obs::JsonValue& v, std::string* error,
    std::initializer_list<const char*> allowed) {
  using Kind = obs::JsonValue::Kind;
  FuzzCase c;

  if (!reject_unknown_keys(v, allowed, error)) return std::nullopt;
  if (!check_spec_version(v, error)) return std::nullopt;

  const obs::JsonValue* machine = require(v, "machine", Kind::Object, error);
  if (machine == nullptr) return std::nullopt;
  auto spec = machine_spec_from_json(*machine, error);
  if (!spec) return std::nullopt;
  c.machine = *spec;

  const obs::JsonValue* graph = require(v, "graph", Kind::Object, error);
  if (graph == nullptr) return std::nullopt;
  auto g = graph_from_json(*graph, error);
  if (!g) return std::nullopt;
  c.graph = std::move(*g);
  const std::int64_t n = c.graph.n();

  const obs::JsonValue* shape = require(v, "shape", Kind::String, error);
  if (shape == nullptr) return std::nullopt;
  c.shape = shape->as_string();

  const obs::JsonValue* schedule = require(v, "schedule", Kind::Array, error);
  if (schedule == nullptr) return std::nullopt;
  for (std::size_t i = 0; i < schedule->size(); ++i) {
    const obs::JsonValue& step = schedule->at(i);
    if (step.kind() != Kind::Array || step.size() == 0) {
      fail(error, "schedule selections must be nonempty arrays");
      return std::nullopt;
    }
    Selection sel;
    for (std::size_t j = 0; j < step.size(); ++j) {
      const std::int64_t node = step.at(j).as_int();
      if (node < 0 || node >= n) {
        fail(error, "schedule node out of range");
        return std::nullopt;
      }
      sel.push_back(static_cast<NodeId>(node));
    }
    c.schedule.push_back(std::move(sel));
  }
  if (c.schedule.empty()) {
    fail(error, "schedule must be nonempty");
    return std::nullopt;
  }
  return c;
}

}  // namespace

std::optional<FuzzCase> case_from_json(const obs::JsonValue& v,
                                       std::string* error) {
  return case_from_json_impl(
      v, error, {"spec_version", "machine", "graph", "shape", "schedule"});
}

obs::JsonValue artifact_to_json(const DivergenceArtifact& a) {
  obs::JsonValue out = case_to_json(a.c);
  // Prepend-by-convention: set() preserves insertion order, so emit into a
  // fresh object with pair/detail first for readability.
  obs::JsonValue wrapped = obs::JsonValue::object();
  wrapped.set("pair", obs::JsonValue(a.pair));
  wrapped.set("detail", obs::JsonValue(a.detail));
  for (const auto& [key, value] : out.members()) {
    wrapped.set(key, value);
  }
  return wrapped;
}

std::optional<DivergenceArtifact> artifact_from_json(const obs::JsonValue& v,
                                                     std::string* error) {
  using Kind = obs::JsonValue::Kind;
  DivergenceArtifact a;
  const obs::JsonValue* pair = require(v, "pair", Kind::String, error);
  const obs::JsonValue* detail = require(v, "detail", Kind::String, error);
  if (pair == nullptr || detail == nullptr) return std::nullopt;
  a.pair = pair->as_string();
  a.detail = detail->as_string();
  auto c = case_from_json_impl(v, error,
                               {"pair", "detail", "spec_version", "machine",
                                "graph", "shape", "schedule"});
  if (!c) return std::nullopt;
  a.c = std::move(*c);
  return a;
}

bool write_artifact(const std::string& path, const DivergenceArtifact& a,
                    std::string* error) {
  std::ofstream out(path);
  if (!out) return fail(error, "cannot open " + path);
  out << artifact_to_json(a).dump(2) << '\n';
  if (!out) return fail(error, "write failed: " + path);
  return true;
}

std::optional<DivergenceArtifact> load_artifact(const std::string& path,
                                                std::string* error) {
  std::ifstream in(path);
  if (!in) {
    fail(error, "cannot open " + path);
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string parse_error;
  const auto v = obs::JsonValue::parse(buffer.str(), &parse_error);
  if (!v) {
    fail(error, path + ": " + parse_error);
    return std::nullopt;
  }
  return artifact_from_json(*v, error);
}

obs::TraceLog trace_case(const FuzzCase& c) {
  obs::TraceLog trace;
  const auto machine = build_machine(c.machine);
  ReplayScheduler replay(c.schedule);
  SimulateOptions opts;
  opts.max_steps = c.schedule.size();
  opts.stable_window = c.schedule.size() + 1;  // never converge early
  opts.trace = &trace;
  simulate(*machine, c.graph, replay, opts);
  return trace;
}

}  // namespace dawn::fuzz
