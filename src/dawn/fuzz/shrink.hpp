// Greedy counterexample shrinking.
//
// Given a FuzzCase on which an oracle pair diverges, shrink_case() tries a
// fixed move set — truncate the schedule, drop single selections, thin
// multi-node selections, delete graph nodes (remapping the schedule), zero
// labels, drop machine states — keeping a move only if the divergence
// persists, and repeats until a full round makes no progress. The result is
// locally minimal: no single move of the set preserves the divergence, so
// re-shrinking a shrunk case returns it unchanged (the idempotence the
// tests pin).
//
// The predicate is the oracle pair's check() reduced to a bool; it is
// re-evaluated per candidate, so the evaluation budget bounds the cost of
// shrinking against expensive pairs (the decider oracles).
#pragma once

#include <functional>

#include "dawn/fuzz/gen.hpp"

namespace dawn::fuzz {

// True iff the divergence is still present on the candidate case.
using StillDiverges = std::function<bool(const FuzzCase&)>;

struct ShrinkOptions {
  // Hard cap on predicate evaluations; shrinking stops (keeping the best
  // case so far) when exhausted.
  int max_evaluations = 400;
};

FuzzCase shrink_case(FuzzCase c, const StillDiverges& fails,
                     const ShrinkOptions& opts = {});

// The graph surgery the node-removal move uses; exposed for tests. Removes
// node v (and its incident edges) and renumbers the ids above it down.
Graph remove_graph_node(const Graph& g, NodeId v);

}  // namespace dawn::fuzz
