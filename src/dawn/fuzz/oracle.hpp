// The oracle-pair registry: every deliberately redundant implementation
// pair in the codebase, behind one uniform check interface.
//
// A pair's check() runs both implementations on a FuzzCase and returns a
// human-readable divergence description, or nullopt if they agree (or the
// case was internally skipped, e.g. both sides exhausted their budget —
// budget exhaustion is "not yet compared", not agreement). applicable()
// is the cheap static filter (topology, state-space size) that decides
// whether check() is worth running at all; the fuzz driver reports skipped
// cases per pair so silently-dead pairs are visible.
//
// Registered pairs (docs/FUZZING.md has the full table):
//   step-engine      Run/FullCopy vs Run/Incremental, lock-step
//   record-replay    a recorded run vs its sched/replay re-execution
//   sync-replay      decide_synchronous vs the Run engine on the replayed
//                    synchronous schedule (cycle re-classification)
//   explore-par      sequential explicit decider vs the sharded parallel
//                    engine at 1/2/8 threads
//   canonical-vs-plain  plain parallel engine vs symmetry-reduced +
//                    bit-packed exploration (identical decisions; the
//                    quotient never stores more than the full space)
//   clique-counted   explicit decider vs counted-clique decider
//   star-counted     explicit decider vs counted-star decider
//   auto-crosscheck  decide(Auto, cross_check=true) must not report
//                    UnknownReason::CrossCheck
//   scalar-vs-batched  scalar run_trials vs the SoA batched trial engine
//                    (per-trial results and deterministic metrics, across
//                    every lockstep scheduler family)
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dawn/fuzz/gen.hpp"

namespace dawn::fuzz {

struct OraclePair {
  std::string name;
  std::string description;
  std::function<bool(const FuzzCase&)> applicable;
  // nullopt = the implementations agree on this case.
  std::function<std::optional<std::string>(const FuzzCase&)> check;
};

// The registry, in documentation order. Built once, never mutated.
const std::vector<OraclePair>& oracle_pairs();

// nullptr if no pair has that name.
const OraclePair* find_pair(const std::string& name);

}  // namespace dawn::fuzz
