#include "dawn/fuzz/gen.hpp"

#include <algorithm>

#include "dawn/graph/generators.hpp"
#include "dawn/util/check.hpp"
#include "dawn/util/hash.hpp"

namespace dawn::fuzz {
namespace {

// Domain separators so the init / step / verdict streams of one seed are
// independent.
constexpr std::uint64_t kInitSalt = 0x1a2b3c4d00000001ULL;
constexpr std::uint64_t kStepSalt = 0x1a2b3c4d00000002ULL;
constexpr std::uint64_t kVerdictSalt = 0x1a2b3c4d00000003ULL;

std::uint64_t mix2(std::uint64_t a, std::uint64_t b) {
  return hash_mix(a ^ hash_mix(b));
}

bool is_halting_class(const MachineSpec& spec) {
  return spec.cls.acceptance == AcceptanceKind::Halting;
}

int num_halting(const MachineSpec& spec) {
  return spec.halt_accept + spec.halt_reject;
}

}  // namespace

std::shared_ptr<Machine> build_machine(const MachineSpec& spec) {
  DAWN_CHECK(spec.num_states >= 1 && spec.num_labels >= 1 && spec.beta >= 1);
  DAWN_CHECK(spec.halt_accept >= 0 && spec.halt_reject >= 0);
  DAWN_CHECK_MSG(num_halting(spec) <= spec.num_states,
                 "halting states exceed the state count");
  DAWN_CHECK_MSG(!is_halting_class(spec) || num_halting(spec) >= 1,
                 "a halting-class machine needs at least one halting state");
  const MachineSpec s = spec;  // captured by value below
  const auto states = static_cast<std::uint64_t>(s.num_states);
  const int halting = num_halting(s);
  FunctionMachine::Spec fm;
  fm.beta = s.beta;
  fm.num_labels = s.num_labels;
  fm.num_states = s.num_states;
  fm.init = [s, states, halting](Label label) {
    // Halting classes start in a transient state (a node born halted is a
    // constant, not a protocol); stable-consensus classes start anywhere.
    const std::uint64_t h =
        mix2(s.seed ^ kInitSalt, static_cast<std::uint64_t>(label));
    if (is_halting_class(s) && halting < s.num_states) {
      const std::uint64_t transient = states - static_cast<std::uint64_t>(halting);
      return static_cast<State>(static_cast<std::uint64_t>(halting) +
                                h % transient);
    }
    return static_cast<State>(h % states);
  };
  fm.step = [s, states](State q, const Neighbourhood& n) {
    // Halting states are absorbing: once a node announces a verdict it
    // never moves again (the a-class acceptance discipline).
    if (is_halting_class(s) && q < num_halting(s)) return q;
    std::uint64_t h = mix2(s.seed ^ kStepSalt, static_cast<std::uint64_t>(q));
    for (const auto& [state, count] : n.entries()) {
      h = mix2(h, (static_cast<std::uint64_t>(state) << 8) |
                      static_cast<std::uint64_t>(count));
    }
    return static_cast<State>(h % states);
  };
  fm.verdict = [s](State q) {
    if (is_halting_class(s)) {
      if (q < s.halt_accept) return Verdict::Accept;
      if (q < num_halting(s)) return Verdict::Reject;
      return Verdict::Neutral;
    }
    switch (mix2(s.seed ^ kVerdictSalt, static_cast<std::uint64_t>(q)) % 3) {
      case 0: return Verdict::Accept;
      case 1: return Verdict::Reject;
      default: return Verdict::Neutral;
    }
  };
  return std::make_shared<FunctionMachine>(std::move(fm));
}

MachineSpec gen_machine(Rng& rng, const MachineGenOptions& opts) {
  DAWN_CHECK(opts.min_states >= 3 && opts.max_states >= opts.min_states);
  const auto classes = all_classes();
  MachineSpec spec;
  spec.cls = classes[rng.index(classes.size())];
  spec.num_states = static_cast<int>(rng.uniform(opts.min_states,
                                                 opts.max_states));
  spec.num_labels = static_cast<int>(rng.uniform(1, opts.max_labels));
  spec.beta = spec.cls.detection == DetectionKind::NonCounting
                  ? 1
                  : static_cast<int>(rng.uniform(2, 4));
  spec.seed = static_cast<std::uint64_t>(rng.engine()());
  if (spec.cls.acceptance == AcceptanceKind::Halting) {
    // At least one halting state of each polarity and at least one
    // transient state, so halting runs and non-halting runs both exist.
    const int budget = spec.num_states - 1;
    spec.halt_accept = static_cast<int>(rng.uniform(1, budget - 1));
    spec.halt_reject = static_cast<int>(rng.uniform(1, budget - spec.halt_accept));
  }
  return spec;
}

namespace {

std::vector<Label> random_labels(Rng& rng, int n, int num_labels) {
  std::vector<Label> labels(static_cast<std::size_t>(n));
  for (Label& l : labels) {
    l = static_cast<Label>(rng.index(static_cast<std::size_t>(num_labels)));
  }
  return labels;
}

// Random spanning tree on nodes [base, base + k) of an in-progress builder.
void add_tree_edges(GraphBuilder& b, Rng& rng, NodeId base, int k) {
  for (int i = 1; i < k; ++i) {
    const NodeId parent =
        base + static_cast<NodeId>(rng.index(static_cast<std::size_t>(i)));
    b.add_edge(base + static_cast<NodeId>(i), parent);
  }
}

}  // namespace

FuzzGraph gen_graph(Rng& rng, const GraphGenOptions& opts) {
  DAWN_CHECK(opts.min_nodes >= 1 && opts.max_nodes >= opts.min_nodes);
  DAWN_CHECK(opts.num_labels >= 1);
  const auto size_at_least = [&](int lo) {
    return static_cast<int>(
        rng.uniform(std::max(lo, opts.min_nodes), opts.max_nodes));
  };
  // Build the shape menu the node bounds allow; every entry stays reachable
  // for every option set, so a fixed seed exercises all of them eventually.
  std::vector<std::string> shapes;
  if (opts.min_nodes <= 1) shapes.push_back("single-node");
  shapes.push_back("edgeless");
  if (opts.max_nodes >= 2) {
    shapes.insert(shapes.end(),
                  {"disconnected", "star", "line", "clique", "random"});
  }
  if (opts.max_nodes >= 3) shapes.push_back("cycle");
  if (opts.max_nodes >= 4) {
    shapes.insert(shapes.end(), {"grid", "bounded-degree"});
  }
  const std::string shape = shapes[rng.index(shapes.size())];

  if (shape == "single-node") {
    GraphBuilder b;
    b.add_node(random_labels(rng, 1, opts.num_labels)[0]);
    return {std::move(b).build(), shape};
  }
  if (shape == "edgeless") {
    const int n = size_at_least(1);
    GraphBuilder b;
    for (Label l : random_labels(rng, n, opts.num_labels)) b.add_node(l);
    return {std::move(b).build(), shape};
  }
  if (shape == "disconnected") {
    // Two spanning-tree components with no edge between them (a part of
    // size 1 is an isolated node).
    const int n = size_at_least(2);
    const int first = static_cast<int>(rng.uniform(1, n - 1));
    GraphBuilder b;
    for (Label l : random_labels(rng, n, opts.num_labels)) b.add_node(l);
    add_tree_edges(b, rng, 0, first);
    add_tree_edges(b, rng, static_cast<NodeId>(first), n - first);
    return {std::move(b).build(), shape};
  }
  if (shape == "star") {
    const int n = size_at_least(2);
    const auto labels = random_labels(rng, n, opts.num_labels);
    return {make_star(labels.front(),
                      {labels.begin() + 1, labels.end()}),
            shape};
  }
  if (shape == "line") {
    // Bias long: lines are the worst case for information propagation.
    const int lo = std::max(opts.min_nodes, (opts.max_nodes + 1) / 2);
    const int n = static_cast<int>(rng.uniform(std::max(2, lo),
                                               opts.max_nodes));
    return {make_line(random_labels(rng, n, opts.num_labels)), shape};
  }
  if (shape == "clique") {
    const int n = size_at_least(2);
    return {make_clique(random_labels(rng, n, opts.num_labels)), shape};
  }
  if (shape == "cycle") {
    const int n = size_at_least(3);
    return {make_cycle(random_labels(rng, n, opts.num_labels)), shape};
  }
  if (shape == "grid") {
    const int w = static_cast<int>(rng.uniform(2, std::max(2, opts.max_nodes / 2)));
    const int h = std::max(2, std::min(opts.max_nodes / w, 1 + static_cast<int>(rng.uniform(1, 3))));
    return {make_grid(w, h, random_labels(rng, w * h, opts.num_labels)),
            shape};
  }
  if (shape == "bounded-degree") {
    const int n = size_at_least(3);
    const int k = static_cast<int>(rng.uniform(2, 4));
    const int extra = static_cast<int>(rng.uniform(0, n));
    return {make_random_bounded_degree(random_labels(rng, n, opts.num_labels),
                                       k, extra, rng),
            shape};
  }
  DAWN_CHECK(shape == "random");
  const int n = size_at_least(2);
  const int extra = static_cast<int>(rng.uniform(0, n));
  return {make_random_connected(random_labels(rng, n, opts.num_labels), extra,
                                rng),
          shape};
}

std::vector<Selection> gen_schedule(Rng& rng, int n, int len) {
  DAWN_CHECK(n >= 1 && len >= 1);
  const auto nodes = static_cast<std::size_t>(n);
  std::vector<Selection> schedule;
  schedule.reserve(static_cast<std::size_t>(len) + nodes);
  std::vector<bool> covered(nodes, false);
  auto note = [&](NodeId v) { covered[static_cast<std::size_t>(v)] = true; };
  for (int i = 0; i < len; ++i) {
    Selection sel;
    switch (rng.index(3)) {
      case 0: {  // exclusive
        sel.push_back(static_cast<NodeId>(rng.index(nodes)));
        break;
      }
      case 1: {  // random nonempty subset
        for (NodeId v = 0; v < n; ++v) {
          if (rng.chance(0.4)) sel.push_back(v);
        }
        if (sel.empty()) sel.push_back(static_cast<NodeId>(rng.index(nodes)));
        break;
      }
      default: {  // synchronous
        for (NodeId v = 0; v < n; ++v) sel.push_back(v);
        break;
      }
    }
    for (NodeId v : sel) note(v);
    schedule.push_back(std::move(sel));
  }
  // Coverage pad: a shuffled sweep of the still-unselected nodes, so the
  // cycled schedule selects every node infinitely often.
  std::vector<NodeId> missing;
  for (NodeId v = 0; v < n; ++v) {
    if (!covered[static_cast<std::size_t>(v)]) missing.push_back(v);
  }
  rng.shuffle(missing);
  for (NodeId v : missing) schedule.push_back({v});
  return schedule;
}

FuzzCase gen_case(Rng& rng, const CaseGenOptions& opts) {
  FuzzCase c;
  c.machine = gen_machine(rng, opts.machine);
  GraphGenOptions graph_opts = opts.graph;
  graph_opts.num_labels = c.machine.num_labels;
  FuzzGraph fg = gen_graph(rng, graph_opts);
  c.graph = std::move(fg.graph);
  c.shape = std::move(fg.shape);
  const int n = c.graph.n();
  const int len = static_cast<int>(
      rng.uniform(n, static_cast<std::int64_t>(n) *
                         std::max(1, opts.max_schedule_factor)));
  c.schedule = gen_schedule(rng, n, len);
  return c;
}

}  // namespace dawn::fuzz
