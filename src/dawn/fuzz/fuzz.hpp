// The differential fuzzing driver: generate cases, run every applicable
// oracle pair, shrink divergences, report.
//
// One run_fuzz() call is one reproducible campaign: the case stream is a
// pure function of options.seed, so `dawn_fuzz --seed S --budget N` found
// on a CI log replays exactly — and after a fix, re-running the same seed
// confirms the divergence is gone. Divergent cases are greedily shrunk
// (fuzz/shrink.hpp) before they are reported, so what lands in the report
// (and on disk, via fuzz/artifact.hpp) is the small version.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dawn/fuzz/artifact.hpp"
#include "dawn/fuzz/gen.hpp"
#include "dawn/fuzz/oracle.hpp"
#include "dawn/fuzz/shrink.hpp"

namespace dawn::fuzz {

struct FuzzOptions {
  std::uint64_t seed = 1;
  // Number of generated cases; every applicable registered pair runs on
  // each.
  int budget_cases = 200;
  // Optional wall-clock bound in milliseconds (0 = none); checked between
  // cases, so one case can overshoot by its own runtime.
  std::uint64_t budget_ms = 0;
  // Pair names to run (empty = all). Unknown names are a caller error,
  // checked up front.
  std::vector<std::string> pairs;
  bool shrink = true;
  CaseGenOptions gen;
  ShrinkOptions shrink_opts;
  // Stop the campaign at the first divergence (the CI smoke mode: one
  // shrunk artifact is enough to file the bug).
  bool stop_on_divergence = false;
};

struct PairStats {
  std::string name;
  int checked = 0;
  int skipped = 0;  // applicable() said no
};

struct FuzzReport {
  int cases = 0;
  std::vector<PairStats> per_pair;
  std::vector<DivergenceArtifact> divergences;  // already shrunk

  bool ok() const { return divergences.empty(); }
  std::string summary() const;
};

FuzzReport run_fuzz(const FuzzOptions& opts);

}  // namespace dawn::fuzz
