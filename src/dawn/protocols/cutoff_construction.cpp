#include "dawn/protocols/cutoff_construction.hpp"

#include "dawn/protocols/exists_label.hpp"
#include "dawn/protocols/threshold_daf.hpp"
#include "dawn/util/check.hpp"

namespace dawn {

std::shared_ptr<FormulaMachine> make_cutoff_automaton(
    const LabellingPredicate& pred, int K) {
  DAWN_CHECK(K >= 1);
  const int l = pred.num_labels;
  std::vector<std::shared_ptr<const Machine>> components;
  components.reserve(static_cast<std::size_t>(l * K));
  for (Label i = 0; i < l; ++i) {
    for (int j = 1; j <= K; ++j) {
      components.push_back(make_threshold_daf(j, i, l));
    }
  }
  auto eval = pred.eval;
  return std::make_shared<FormulaMachine>(
      std::move(components), [eval, l, K](const std::vector<bool>& bits) {
        // bits[i*K + (j-1)] = [x_i >= j]; recover the cutoff cell.
        LabelCount cell(static_cast<std::size_t>(l), 0);
        for (int i = 0; i < l; ++i) {
          for (int j = 1; j <= K; ++j) {
            if (bits[static_cast<std::size_t>(i * K + j - 1)]) {
              cell[static_cast<std::size_t>(i)] = j;
            }
          }
        }
        return eval(cell);
      });
}

std::shared_ptr<FormulaMachine> make_cutoff1_automaton(
    const LabellingPredicate& pred) {
  const int l = pred.num_labels;
  std::vector<std::shared_ptr<const Machine>> components;
  components.reserve(static_cast<std::size_t>(l));
  for (Label i = 0; i < l; ++i) {
    components.push_back(make_exists_label(i, l));
  }
  auto eval = pred.eval;
  return std::make_shared<FormulaMachine>(
      std::move(components), [eval, l](const std::vector<bool>& bits) {
        LabelCount cell(static_cast<std::size_t>(l), 0);
        for (int i = 0; i < l; ++i) {
          cell[static_cast<std::size_t>(i)] = bits[static_cast<std::size_t>(i)];
        }
        return eval(cell);
      });
}

std::shared_ptr<FormulaMachine> make_interval_automaton(Label target, int lo,
                                                        int hi,
                                                        int num_labels) {
  DAWN_CHECK(0 <= lo && lo <= hi);
  std::vector<std::shared_ptr<const Machine>> components;
  // [x >= lo] (trivially true for lo = 0) and [x >= hi+1].
  components.push_back(lo >= 1
                           ? make_threshold_daf(lo, target, num_labels)
                           : nullptr);
  components.push_back(make_threshold_daf(hi + 1, target, num_labels));
  if (!components[0]) {
    // Replace the trivial component with the other threshold so the formula
    // machine has uniform non-null components.
    components[0] = components[1];
    return std::make_shared<FormulaMachine>(
        std::move(components),
        [](const std::vector<bool>& b) { return !b[1]; });
  }
  return std::make_shared<FormulaMachine>(
      std::move(components),
      [](const std::vector<bool>& b) { return b[0] && !b[1]; });
}

}  // namespace dawn
