#include "dawn/protocols/halting_flood.hpp"

#include "dawn/util/check.hpp"

namespace dawn {

std::shared_ptr<Machine> make_halting_flood(Label target, int num_labels) {
  DAWN_CHECK(target >= 0 && target < num_labels);
  FunctionMachine::Spec spec;
  spec.beta = 1;
  spec.num_labels = num_labels;
  spec.num_states = 4;
  spec.init = [target](Label l) { return static_cast<State>(l == target); };
  spec.step = [](State s, const Neighbourhood& n) {
    if (s >= 2) return s;  // halted
    if (s == 1 || n.any([](State q) { return q == 1; })) return State{2};
    return State{3};
  };
  spec.verdict = [](State s) {
    if (s == 2) return Verdict::Accept;
    if (s == 3) return Verdict::Reject;
    return Verdict::Neutral;
  };
  spec.name = [](State s) {
    switch (s) {
      case 0:
        return "watch";
      case 1:
        return "watch*";
      case 2:
        return "acc!";
      case 3:
        return "rej!";
    }
    return "?";
  };
  return std::make_shared<FunctionMachine>(spec);
}

bool check_halting_on(const Machine& m, int num_probe_states) {
  // Probe δ(q, N) for every accept/reject state q against single-state
  // neighbourhoods of every probe state and the empty neighbourhood. This is
  // a sound spot-check (not a proof) for machines whose transition function
  // factors through presence bits, which covers all machines in this repo.
  for (State q = 0; q < num_probe_states; ++q) {
    const Verdict v = m.verdict(q);
    if (v == Verdict::Neutral) continue;
    {
      const auto empty = Neighbourhood::from_counts({}, m.beta());
      if (m.step(q, empty) != q) return false;
    }
    for (State o = 0; o < num_probe_states; ++o) {
      const std::pair<State, int> counts[] = {{o, m.beta()}};
      const auto n = Neighbourhood::from_counts(counts, m.beta());
      if (m.step(q, n) != q) return false;
    }
  }
  return true;
}

}  // namespace dawn
