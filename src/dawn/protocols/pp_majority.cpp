#include "dawn/protocols/pp_majority.hpp"

#include "dawn/util/check.hpp"

namespace dawn {
namespace {

constexpr State kA = 0;
constexpr State kB = 1;
constexpr State kWeakA = 2;
constexpr State kWeakB = 3;

}  // namespace

GraphPopulationProtocol make_majority_protocol(Label la, Label lb,
                                               int num_labels) {
  DAWN_CHECK(la != lb);
  DAWN_CHECK(la >= 0 && la < num_labels);
  DAWN_CHECK(lb >= 0 && lb < num_labels);
  GraphPopulationProtocol p;
  p.num_states = 4;
  p.num_labels = num_labels;
  p.init = [la, lb](Label l) {
    if (l == la) return kA;
    if (l == lb) return kB;
    return kWeakA;
  };
  p.delta = [](State x, State y) -> std::pair<State, State> {
    auto one_way = [](State u, State v) -> std::pair<State, State> {
      if (u == kA && v == kB) return {kWeakA, kWeakB};
      if (u == kA && v == kWeakB) return {kA, kWeakA};
      if (u == kB && v == kWeakA) return {kB, kWeakB};
      return {u, v};
    };
    auto [x1, y1] = one_way(x, y);
    if (x1 != x || y1 != y) return {x1, y1};
    auto [y2, x2] = one_way(y, x);
    return {x2, y2};
  };
  p.verdict = [](State s) {
    return (s == kA || s == kWeakA) ? Verdict::Accept : Verdict::Reject;
  };
  p.name = [](State s) {
    switch (s) {
      case kA:
        return "A";
      case kB:
        return "B";
      case kWeakA:
        return "a";
      case kWeakB:
        return "b";
    }
    return "?";
  };
  return p;
}

std::shared_ptr<Machine> make_majority_daf(Label la, Label lb,
                                           int num_labels) {
  return compile_population(make_majority_protocol(la, lb, num_labels));
}

}  // namespace dawn
