#include "dawn/protocols/exists_label.hpp"

#include "dawn/util/check.hpp"

namespace dawn {

std::shared_ptr<Machine> make_exists_label(Label target, int num_labels) {
  DAWN_CHECK(target >= 0 && target < num_labels);
  FunctionMachine::Spec spec;
  spec.beta = 1;
  spec.num_labels = num_labels;
  spec.num_states = 2;
  spec.init = [target](Label l) { return static_cast<State>(l == target); };
  spec.step = [](State s, const Neighbourhood& n) {
    if (s == 0 && n.any([](State q) { return q == 1; })) return State{1};
    return s;
  };
  spec.verdict = [](State s) {
    return s == 1 ? Verdict::Accept : Verdict::Reject;
  };
  spec.name = [](State s) { return s == 1 ? "lit" : "dark"; };
  return std::make_shared<FunctionMachine>(spec);
}

}  // namespace dawn
