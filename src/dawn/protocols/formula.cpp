#include "dawn/protocols/formula.hpp"

#include <algorithm>
#include <map>

#include "dawn/util/check.hpp"

namespace dawn {

FormulaMachine::FormulaMachine(
    std::vector<std::shared_ptr<const Machine>> components,
    std::function<bool(const std::vector<bool>&)> formula)
    : components_(std::move(components)), formula_(std::move(formula)) {
  DAWN_CHECK(!components_.empty());
  DAWN_CHECK(static_cast<bool>(formula_));
  for (const auto& c : components_) {
    DAWN_CHECK(c != nullptr);
    DAWN_CHECK(c->num_labels() == components_.front()->num_labels());
    beta_ = std::max(beta_, c->beta());
  }
}

int FormulaMachine::num_labels() const {
  return components_.front()->num_labels();
}

State FormulaMachine::pack(std::vector<State> tuple) const {
  return states_.id(tuple);
}

State FormulaMachine::component_of(State state, std::size_t i) const {
  return states_.value(state)[i];
}

State FormulaMachine::init(Label label) const {
  std::vector<State> tuple(components_.size());
  for (std::size_t i = 0; i < components_.size(); ++i) {
    tuple[i] = components_[i]->init(label);
  }
  return pack(std::move(tuple));
}

State FormulaMachine::step(State state, const Neighbourhood& n) const {
  const std::vector<State> me = states_.value(state);
  std::vector<State> next(me.size());
  for (std::size_t i = 0; i < components_.size(); ++i) {
    // Project the tuple neighbourhood onto component i, re-capping at the
    // component's β (exact, see protocols/boolean.cpp).
    std::map<State, int> merged;
    for (auto [s, c] : n.entries()) merged[states_.value(s)[i]] += c;
    std::vector<std::pair<State, int>> counts(merged.begin(), merged.end());
    const auto view = Neighbourhood::from_counts(counts, components_[i]->beta());
    next[i] = components_[i]->step(me[i], view);
  }
  return pack(std::move(next));
}

Verdict FormulaMachine::verdict(State state) const {
  const std::vector<State>& tuple = states_.value(state);
  std::vector<bool> bits(tuple.size());
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    switch (components_[i]->verdict(tuple[i])) {
      case Verdict::Accept:
        bits[i] = true;
        break;
      case Verdict::Reject:
        bits[i] = false;
        break;
      case Verdict::Neutral:
        return Verdict::Neutral;
    }
  }
  return formula_(bits) ? Verdict::Accept : Verdict::Reject;
}

State FormulaMachine::committed(State state) const {
  std::vector<State> tuple = states_.value(state);
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    tuple[i] = components_[i]->committed(tuple[i]);
  }
  return pack(std::move(tuple));
}

std::string FormulaMachine::state_name(State state) const {
  const std::vector<State>& tuple = states_.value(state);
  std::string out = "<";
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (i) out += " x ";
    out += components_[i]->state_name(tuple[i]);
  }
  return out + ">";
}

}  // namespace dawn
