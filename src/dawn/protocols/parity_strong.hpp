// Modular counting via strong broadcasts: decides  #ℓ ≡ r (mod m).
//
// This predicate admits no cutoff, so it separates DAF (= NL, Lemma 5.1)
// from dAF (= Cutoff): no dAF automaton decides it, but the strong-broadcast
// protocol below does, and the Lemma 5.1 pipeline turns it into a DAF
// automaton.
//
// Protocol: every agent tracks the running count c (mod m) and whether it
// has contributed. An uncounted ℓ-agent's broadcast increments everyone's c
// (including, via its own successor state, its own) and marks it counted.
// After all ℓ-agents have fired exactly once, every agent holds
// c = #ℓ mod m forever. Agents accept iff c == r.
#pragma once

#include <memory>

#include "dawn/extensions/strong_broadcast.hpp"

namespace dawn {

// The abstract protocol (ground truth via the strong deciders).
std::shared_ptr<StrongBroadcastProtocol> make_mod_counter_protocol(
    int m, int r, Label counted, int num_labels);

// The full Lemma 5.1 pipeline output (machine = the DAF automaton).
StrongToDaf make_mod_counter_daf(int m, int r, Label counted, int num_labels);

}  // namespace dawn
