#include "dawn/protocols/pp_mod.hpp"

#include "dawn/util/check.hpp"

namespace dawn {

GraphPopulationProtocol make_mod_population_protocol(int m, int r,
                                                     Label counted,
                                                     int num_labels) {
  DAWN_CHECK(m >= 2);
  DAWN_CHECK(r >= 0 && r < m);
  DAWN_CHECK(counted >= 0 && counted < num_labels);
  GraphPopulationProtocol p;
  p.num_states = 2 * m;
  p.num_labels = num_labels;
  p.init = [m, counted](Label l) {
    (void)m;
    return static_cast<State>(l == counted ? 1 : 0);  // leader with 1 / 0
  };
  p.delta = [m](State a, State b) -> std::pair<State, State> {
    const bool leader_a = a < m;
    const bool leader_b = b < m;
    if (leader_a && leader_b) {
      // Fusion: the initiator keeps the sum, the responder follows it.
      const State sum = static_cast<State>((a + b) % m);
      return {sum, static_cast<State>(m + sum)};
    }
    if (leader_a && !leader_b) {
      // Stamp the follower with the leader's current value.
      return {a, static_cast<State>(m + a)};
    }
    if (!leader_a && leader_b) {
      return {static_cast<State>(m + b), b};
    }
    return {a, b};  // two followers: nothing to exchange
  };
  p.verdict = [m, r](State s) {
    return s % m == r ? Verdict::Accept : Verdict::Reject;
  };
  p.name = [m](State s) {
    return (s < m ? "L" : "f") + std::to_string(s % m);
  };
  return p;
}

std::shared_ptr<Machine> make_mod_population_daf(int m, int r, Label counted,
                                                 int num_labels) {
  return compile_population(
      make_mod_population_protocol(m, r, counted, num_labels));
}

}  // namespace dawn
