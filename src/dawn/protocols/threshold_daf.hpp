// The dAF threshold protocol of Lemma C.5: decides x >= k (at least k nodes
// carry the counted label) with weak broadcasts, hence — after the Lemma 4.7
// compilation — as a plain dAF automaton.
//
// States {0, 1, ..., k}; counted nodes start in 1, others in 0. Broadcasts:
//   ⟨level⟩ :  i ↦ i, {i ↦ i+1}        for i = 1..k-1
//   ⟨accept⟩:  k ↦ k, {q ↦ k}
// A level-i broadcast promotes the *other* agents at level i, so level i+1
// is populated only if two agents reached level i — inductively, level k is
// reachable iff at least k agents started at 1. ⟨accept⟩ then floods k.
//
// Together with boolean combinations this yields all of Cutoff
// (Proposition C.6); x >= k itself is the building block.
#pragma once

#include <memory>

#include "dawn/extensions/broadcast.hpp"

namespace dawn {

// The abstract overlay (for the strong/abstract engines).
std::shared_ptr<BroadcastOverlay> make_threshold_overlay(int k,
                                                         Label counted,
                                                         int num_labels);

// The compiled plain dAF automaton (β = 1).
std::shared_ptr<Machine> make_threshold_daf(int k, Label counted,
                                            int num_labels);

}  // namespace dawn
