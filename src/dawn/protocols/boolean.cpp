#include "dawn/protocols/boolean.hpp"

#include <algorithm>
#include <map>

#include "dawn/util/check.hpp"
#include "dawn/util/hash.hpp"
#include "dawn/util/interner.hpp"

namespace dawn {
namespace {

class ProductMachine : public Machine {
 public:
  ProductMachine(std::shared_ptr<const Machine> left,
                 std::shared_ptr<const Machine> right, BoolOp op)
      : left_(std::move(left)), right_(std::move(right)), op_(op) {
    DAWN_CHECK(left_ != nullptr && right_ != nullptr);
    DAWN_CHECK(left_->num_labels() == right_->num_labels());
  }

  int beta() const override {
    return std::max(left_->beta(), right_->beta());
  }
  int num_labels() const override { return left_->num_labels(); }

  State init(Label label) const override {
    return pack(left_->init(label), right_->init(label));
  }

  State step(State state, const Neighbourhood& n) const override {
    const auto [l, r] = states_.value(state);
    return pack(left_->step(l, component_view(n, 0, left_->beta())),
                right_->step(r, component_view(n, 1, right_->beta())));
  }

  Verdict verdict(State state) const override {
    const auto [l, r] = states_.value(state);
    const Verdict a = left_->verdict(l);
    const Verdict b = right_->verdict(r);
    if (op_ == BoolOp::And) {
      if (a == Verdict::Reject || b == Verdict::Reject) return Verdict::Reject;
      if (a == Verdict::Accept && b == Verdict::Accept) return Verdict::Accept;
      return Verdict::Neutral;
    }
    if (a == Verdict::Accept || b == Verdict::Accept) return Verdict::Accept;
    if (a == Verdict::Reject && b == Verdict::Reject) return Verdict::Reject;
    return Verdict::Neutral;
  }

  State committed(State state) const override {
    const auto [l, r] = states_.value(state);
    return pack(left_->committed(l), right_->committed(r));
  }

  std::string state_name(State state) const override {
    const auto [l, r] = states_.value(state);
    return "<" + left_->state_name(l) + " x " + right_->state_name(r) + ">";
  }

 private:
  State pack(State l, State r) const { return states_.id({l, r}); }

  // Projects a product neighbourhood onto one component, re-capping counts
  // at the component's β (min(min(c, β_max), β_i) = min(c, β_i), so the
  // projection is exact for the component machine).
  Neighbourhood component_view(const Neighbourhood& n, int which,
                               int beta) const {
    std::map<State, int> merged;
    for (auto [s, c] : n.entries()) {
      const auto [l, r] = states_.value(s);
      merged[which == 0 ? l : r] += c;
    }
    std::vector<std::pair<State, int>> counts(merged.begin(), merged.end());
    return Neighbourhood::from_counts(counts, beta);
  }

  std::shared_ptr<const Machine> left_;
  std::shared_ptr<const Machine> right_;
  BoolOp op_;
  mutable Interner<std::pair<State, State>, PairHash<State, State>> states_;
};

}  // namespace

std::shared_ptr<Machine> combine(std::shared_ptr<const Machine> left,
                                 std::shared_ptr<const Machine> right,
                                 BoolOp op) {
  return std::make_shared<ProductMachine>(std::move(left), std::move(right),
                                          op);
}

}  // namespace dawn
