// The flooding automaton: the canonical dAf protocol for Cutoff(1)
// properties ([16, Prop. 12], used by Proposition C.4).
//
// Decides "at least one node carries label ℓ" on arbitrary connected graphs
// under adversarial fairness with β = 1: a node is lit if it carries ℓ or
// has ever seen a lit neighbour; lit-ness floods the graph. Acceptance is by
// stable consensus (lit = accept), and the protocol is consistent: if ℓ
// occurs the flood reaches everyone under any fair schedule, otherwise
// nobody ever lights up.
#pragma once

#include <memory>

#include "dawn/automata/machine.hpp"

namespace dawn {

// States: 0 = dark (reject), 1 = lit (accept).
std::shared_ptr<Machine> make_exists_label(Label target, int num_labels);

}  // namespace dawn
