// The classic 4-state population-protocol for majority, compiled into a DAF
// automaton via Lemma 4.10.
//
// States: strong A/B and weak a/b. Interactions (symmetric):
//   A,B ↦ a,b   (cancellation; #A - #B is invariant)
//   A,b ↦ A,a   (the surviving strong opinion converts weak dissenters)
//   B,a ↦ B,b
// If #A > #B every B is eventually cancelled and the remaining A's convert
// all weak b's: stable accept; symmetrically for #B > #A.
//
// Scope (verified by the exact deciders in the tests): the protocol is
// stably correct on *cliques* — the classic population-protocol setting,
// which suffices for labelling properties — under the promise #ℓa ≠ #ℓb.
// On sparse topologies a surviving strong opinion can be walled off from
// remaining weak dissenters by already-converted agents (e.g. the star
// A—centre with the centre cancelled), and on ties both weak opinions
// persist; in both cases no consensus stabilises. General-graph majority
// needs the heavier machinery the paper builds: the Lemma 5.1 broadcast
// pipeline (NL) or, for bounded degree, the Section 6.1 automaton
// (protocols/majority_bounded.hpp), which also handles ties.
#pragma once

#include <memory>

#include "dawn/extensions/population.hpp"

namespace dawn {

// The abstract protocol; label `la` maps to A, `lb` to B, every other label
// to the weak state a (it joins whichever side wins).
GraphPopulationProtocol make_majority_protocol(Label la, Label lb,
                                               int num_labels);

// The compiled DAF automaton (β = 2).
std::shared_ptr<Machine> make_majority_daf(Label la, Label lb, int num_labels);

}  // namespace dawn
