// Products of machines with a boolean verdict formula — the executable form
// of "the decidable properties are closed under boolean combinations"
// (Propositions C.4/C.6).
//
// A FormulaMachine runs N component machines in lockstep (each component
// steps on the projection of the neighbourhood, as in the binary product of
// protocols/boolean.hpp) and derives its verdict from the component
// verdicts through an arbitrary boolean function. Component verdicts must
// be total (Accept/Reject; a Neutral component makes the formula verdict
// Neutral, deferring consensus).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "dawn/automata/machine.hpp"
#include "dawn/util/hash.hpp"
#include "dawn/util/interner.hpp"

namespace dawn {

class FormulaMachine : public Machine {
 public:
  // `formula` receives one bool per component (true = Accept).
  FormulaMachine(std::vector<std::shared_ptr<const Machine>> components,
                 std::function<bool(const std::vector<bool>&)> formula);

  int beta() const override { return beta_; }
  int num_labels() const override;
  State init(Label label) const override;
  State step(State state, const Neighbourhood& n) const override;
  Verdict verdict(State state) const override;
  State committed(State state) const override;
  std::string state_name(State state) const override;

  std::size_t num_components() const { return components_.size(); }
  State component_of(State state, std::size_t i) const;

 private:
  State pack(std::vector<State> tuple) const;

  std::vector<std::shared_ptr<const Machine>> components_;
  std::function<bool(const std::vector<bool>&)> formula_;
  int beta_ = 1;
  mutable Interner<std::vector<State>, VectorHash<State>> states_;
};

}  // namespace dawn
