// A halting automaton (acceptance by halting, classes xa*) for the
// Lemma 3.1 / Figure 3 experiment.
//
// Each node waits for one activation, inspects its neighbourhood, then halts
// forever: accept iff it carries label ℓ or sees a neighbour that started
// with label ℓ. On the uniform cycles used in the experiment this halts with
// a correct uniform verdict (all-ℓ cycle: accept; ℓ-free cycle: reject); on
// the spliced graph GH of Lemma 3.1 the G-part halts accepting and the
// H-part halts rejecting — exhibiting the inconsistency that proves halting
// classes decide only trivial labelling properties (Proposition C.2).
#pragma once

#include <memory>

#include "dawn/automata/machine.hpp"

namespace dawn {

// States: 0 = watching(other), 1 = watching(ℓ), 2 = halted-accept,
// 3 = halted-reject. Halted states are absorbing (halting acceptance).
std::shared_ptr<Machine> make_halting_flood(Label target, int num_labels);

// True iff the machine never leaves accept/reject states (the definition of
// halting acceptance); checked by exhaustive δ probing for enumerable
// machines over the reachable neighbourhood space of the given graph.
bool check_halting_on(const Machine& m, int num_probe_states);

}  // namespace dawn
