#include "dawn/protocols/example46.hpp"

namespace dawn {

std::shared_ptr<BroadcastOverlay> make_example46_overlay() {
  FunctionMachine::Spec inner;
  inner.beta = 1;
  inner.num_labels = 3;
  inner.num_states = 3;
  inner.init = [](Label l) { return static_cast<State>(l); };
  inner.step = [](State s, const Neighbourhood& n) {
    if (s == kExample46X && n.any([](State q) { return q == kExample46A; })) {
      return kExample46A;
    }
    return s;
  };
  inner.verdict = [](State) { return Verdict::Neutral; };
  inner.name = [](State s) { return std::string(1, "abx"[s]); };

  SimpleBroadcastOverlay::Spec spec;
  spec.machine = std::make_shared<FunctionMachine>(inner);
  spec.num_labels = 3;
  spec.broadcasts.push_back(
      {kExample46A, kExample46A,
       [](State q) { return q == kExample46X ? kExample46A : q; }, "a!"});
  spec.broadcasts.push_back({kExample46B, kExample46B,
                             [](State q) {
                               if (q == kExample46B) return kExample46A;
                               if (q == kExample46A) return kExample46X;
                               return q;
                             },
                             "b!"});
  return std::make_shared<SimpleBroadcastOverlay>(std::move(spec));
}

}  // namespace dawn
