// Boolean combinations of stable-consensus automata.
//
// The decidable labelling properties of every class are closed under boolean
// combinations (used by Propositions C.4 and C.6): run both machines as a
// product — each component steps on the projection of the neighbourhood —
// and combine the verdicts. Negation is verdict swapping (see
// automata/combinators.hpp).
#pragma once

#include <memory>

#include "dawn/automata/machine.hpp"

namespace dawn {

enum class BoolOp { And, Or };

// The product automaton deciding φ_left ∘ φ_right. Both machines must share
// the input alphabet. β of the product is max(β_left, β_right).
std::shared_ptr<Machine> combine(std::shared_ptr<const Machine> left,
                                 std::shared_ptr<const Machine> right,
                                 BoolOp op);

}  // namespace dawn
