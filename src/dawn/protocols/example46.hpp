// The Example 4.6 automaton (Figure 2): a 3-state dAF automaton with weak
// broadcasts, used by the paper to illustrate simultaneous broadcasts,
// extensions and reorderings. Promoted to the library so the figure bench
// and the tests share one definition.
//
// States {a, b, x}; a neighbourhood transition x -> a when an a-neighbour
// is present; broadcasts a ↦ a, {x ↦ a} and b ↦ b, {b ↦ a, a ↦ x}.
#pragma once

#include <memory>

#include "dawn/extensions/broadcast.hpp"

namespace dawn {

inline constexpr State kExample46A = 0;
inline constexpr State kExample46B = 1;
inline constexpr State kExample46X = 2;

// Labels map 0 -> a, 1 -> b, 2 -> x. Verdicts are Neutral (the example
// illustrates dynamics, not a decision).
std::shared_ptr<BroadcastOverlay> make_example46_overlay();

}  // namespace dawn
