#include "dawn/protocols/threshold_daf.hpp"

#include "dawn/util/check.hpp"

namespace dawn {

std::shared_ptr<BroadcastOverlay> make_threshold_overlay(int k, Label counted,
                                                         int num_labels) {
  DAWN_CHECK(k >= 1);
  DAWN_CHECK(counted >= 0 && counted < num_labels);

  FunctionMachine::Spec inner;
  inner.beta = 1;
  inner.num_labels = num_labels;
  inner.num_states = k + 1;
  inner.init = [counted](Label l) { return static_cast<State>(l == counted); };
  inner.step = [](State s, const Neighbourhood&) { return s; };  // silent
  inner.verdict = [k](State s) {
    return s == k ? Verdict::Accept : Verdict::Reject;
  };
  inner.name = [](State s) { return "lvl" + std::to_string(s); };

  SimpleBroadcastOverlay::Spec spec;
  spec.machine = std::make_shared<FunctionMachine>(inner);
  spec.num_labels = num_labels;
  for (State i = 1; i < k; ++i) {
    spec.broadcasts.push_back(
        {i, i,
         [i](State q) { return q == i ? static_cast<State>(i + 1) : q; },
         "level" + std::to_string(i)});
  }
  spec.broadcasts.push_back(
      {static_cast<State>(k), static_cast<State>(k),
       [k](State) { return static_cast<State>(k); }, "accept"});
  return std::make_shared<SimpleBroadcastOverlay>(std::move(spec));
}

std::shared_ptr<Machine> make_threshold_daf(int k, Label counted,
                                            int num_labels) {
  return compile_weak_broadcast(
      make_threshold_overlay(k, counted, num_labels));
}

}  // namespace dawn
