#include "dawn/protocols/majority_bounded.hpp"

#include <algorithm>
#include <cstdlib>

#include "dawn/util/check.hpp"

namespace dawn {

State CancelEncoding::pair_id(int x, int role) const {
  DAWN_CHECK(x >= -E && x <= E);
  DAWN_CHECK(role >= 0 && role < 4);
  return static_cast<State>((x + E) * 4 + role);
}

bool CancelEncoding::is_pair(State s) const {
  return s >= 0 && s < (2 * E + 1) * 4;
}

int CancelEncoding::x_of(State s) const {
  DAWN_CHECK(is_pair(s));
  return s / 4 - E;
}

int CancelEncoding::role_of(State s) const {
  DAWN_CHECK(is_pair(s));
  return s % 4;
}

State CancelEncoding::error_id() const {
  return static_cast<State>((2 * E + 1) * 4);
}

State CancelEncoding::reject_id() const { return error_id() + 1; }

int CancelEncoding::num_states() const { return (2 * E + 1) * 4 + 2; }

std::string CancelEncoding::name(State s) const {
  if (s == error_id()) return "bot";
  if (s == reject_id()) return "REJ";
  const int x = x_of(s);
  const char* role_names[] = {"", ",L", ",Ldbl", ",Lrej"};
  return "(" + std::to_string(x) + role_names[role_of(s)] + ")";
}

namespace {

class BcOverlay : public BroadcastOverlay {
 public:
  BcOverlay(std::shared_ptr<CompiledAbsenceMachine> detect_machine,
            CancelEncoding enc, int k, int num_labels)
      : detect_machine_(std::move(detect_machine)),
        enc_(enc),
        k_(k),
        num_labels_(num_labels) {}

  static constexpr int kRespDouble = 0;
  static constexpr int kRespReject = 1;

  const Machine& inner() const override { return *detect_machine_; }
  int num_labels() const override { return num_labels_; }
  State init(Label label) const override {
    return detect_machine_->init(label);
  }
  int num_responses() const override { return 2; }

  std::optional<std::pair<State, int>> initiate(State state) const override {
    // Initiators are agents whose P'_detect state is committed and armed.
    if (detect_machine_->committed(state) != state) return std::nullopt;
    const State q = detect_machine_->last_of(state);
    if (!enc_.is_pair(q)) return std::nullopt;
    const int role = enc_.role_of(q);
    const int x = enc_.x_of(q);
    if (role == CancelEncoding::kArmDouble) {
      // ⟨double⟩: (x, L_double) ↦ (2x, L). At firing time |x| <= k, so 2x
      // stays within [-E, E] (E >= 2k); clamp defensively anyway.
      const int doubled = std::clamp(2 * x, -enc_.E, enc_.E);
      return std::make_pair(
          detect_machine_->embed(
              enc_.pair_id(doubled, CancelEncoding::kLeader)),
          kRespDouble);
    }
    if (role == CancelEncoding::kArmReject) {
      // ⟨reject⟩: (x, L_□) ↦ □.
      return std::make_pair(detect_machine_->embed(enc_.reject_id()),
                            kRespReject);
    }
    return std::nullopt;
  }

  State respond(int response, State state) const override {
    // Response functions compose with `last`: agents caught mid-wave are
    // first moved back to their last committed P_detect state.
    const State q = detect_machine_->last_of(state);
    return detect_machine_->embed(respond_detect(response, q));
  }

  Verdict verdict(State state) const override {
    // Only □ rejects; everything else (including the transient ⊥) accepts.
    return detect_machine_->last_of(state) == enc_.reject_id()
               ? Verdict::Reject
               : Verdict::Accept;
  }

  std::string response_name(int response) const override {
    return response == kRespDouble ? "double" : "reject";
  }

 private:
  State respond_detect(int response, State q) const {
    if (q == enc_.error_id() || q == enc_.reject_id()) return q;
    const int x = enc_.x_of(q);
    const int role = enc_.role_of(q);
    if (role != CancelEncoding::kFollower) {
      // Another leader received the broadcast: it disagrees with the
      // initiator's view and moves to the error state, triggering a reset
      // with strictly fewer leaders.
      return enc_.error_id();
    }
    if (response == kRespDouble) {
      if (std::abs(x) <= k_) {
        return enc_.pair_id(2 * x, CancelEncoding::kFollower);
      }
      return q;  // unreachable at firing time; keep totality
    }
    // ⟨reject⟩.
    if (x < 0) return enc_.reject_id();
    return q;  // unreachable at firing time; keep totality
  }

  std::shared_ptr<CompiledAbsenceMachine> detect_machine_;
  CancelEncoding enc_;
  int k_;
  int num_labels_;
};

class ResetOverlay : public BroadcastOverlay {
 public:
  ResetOverlay(std::shared_ptr<CompiledBroadcastMachine> bc_machine,
               std::shared_ptr<CompiledAbsenceMachine> detect_machine,
               std::shared_ptr<TaggedMachine> tagged, CancelEncoding enc,
               int num_labels)
      : bc_machine_(std::move(bc_machine)),
        detect_machine_(std::move(detect_machine)),
        tagged_(std::move(tagged)),
        enc_(enc),
        num_labels_(num_labels) {}

  const Machine& inner() const override { return *tagged_; }
  int num_labels() const override { return num_labels_; }
  State init(Label label) const override { return tagged_->init(label); }
  int num_responses() const override { return 1; }

  std::optional<std::pair<State, int>> initiate(State state) const override {
    const auto [m, tag] = tagged_->unpack(state);
    // Initiators: committed at the broadcast layer AND committed at the
    // absence layer AND in the error state ⊥. Such agents are frozen until
    // ⟨reset⟩ fires.
    if (bc_machine_->committed(m) != m) return std::nullopt;
    const State s = bc_machine_->inner_of(m);
    if (detect_machine_->committed(s) != s) return std::nullopt;
    if (detect_machine_->last_of(s) != enc_.error_id()) return std::nullopt;
    // (⊥, x0) ↦ ((x0, L), x0): the initiator becomes the new leader with its
    // remembered input contribution.
    const int x0 = tag - enc_.E;
    return std::make_pair(
        tagged_->pack(embed_pair(x0, CancelEncoding::kLeader), tag), 0);
  }

  State respond(int, State state) const override {
    const auto [m, tag] = tagged_->unpack(state);
    (void)m;
    // (r, x0) ↦ ((x0, 0), x0): everyone restarts as a follower from its
    // remembered input. Total on all states — no `last` needed.
    const int x0 = tag - enc_.E;
    return tagged_->pack(embed_pair(x0, CancelEncoding::kFollower), tag);
  }

  Verdict verdict(State state) const override {
    const auto [m, tag] = tagged_->unpack(state);
    (void)tag;
    const State s = bc_machine_->inner_of(bc_machine_->committed(m));
    return detect_machine_->last_of(s) == enc_.reject_id() ? Verdict::Reject
                                                           : Verdict::Accept;
  }

  std::string response_name(int) const override { return "reset"; }

 private:
  State embed_pair(int x, int role) const {
    return bc_machine_->embed(
        detect_machine_->embed(enc_.pair_id(x, role)));
  }

  std::shared_ptr<CompiledBroadcastMachine> bc_machine_;
  std::shared_ptr<CompiledAbsenceMachine> detect_machine_;
  std::shared_ptr<TaggedMachine> tagged_;
  CancelEncoding enc_;
  int num_labels_;
};

}  // namespace

State BoundedThresholdAutomaton::committed_detect_of(State final_state) const {
  const State r = machine->inner_of(machine->committed(final_state));
  const auto [m, tag] = reset_tagged->unpack(r);
  (void)tag;
  const State s = bc_machine->inner_of(bc_machine->committed(m));
  return detect_machine->last_of(s);
}

BoundedThresholdAutomaton make_homogeneous_threshold_daf(
    std::vector<int> coeffs, int k) {
  DAWN_CHECK(!coeffs.empty());
  DAWN_CHECK_MSG(k >= 2, "degree bound must be >= 2 (connected non-clique)");
  int max_coeff = 0;
  for (int a : coeffs) max_coeff = std::max(max_coeff, std::abs(a));
  DAWN_CHECK_MSG(max_coeff > 0, "at least one coefficient must be nonzero");

  BoundedThresholdAutomaton out;
  out.coeffs = coeffs;
  out.k = k;
  out.enc.E = std::max(max_coeff, 2 * k);
  const CancelEncoding enc = out.enc;
  const int num_labels = static_cast<int>(coeffs.size());

  // --- Layer 1: ⟨cancel⟩ on (x, role) pairs; ⊥ and □ are inert. ---
  {
    FunctionMachine::Spec spec;
    spec.beta = k;
    spec.num_labels = num_labels;
    spec.num_states = enc.num_states();
    spec.init = [enc, coeffs](Label l) {
      return enc.pair_id(coeffs[static_cast<std::size_t>(l)],
                         CancelEncoding::kLeader);
    };
    spec.step = [enc, k](State s, const Neighbourhood& n) {
      if (!enc.is_pair(s)) return s;  // ⊥, □: inert
      const int x = enc.x_of(s);
      const int role = enc.role_of(s);
      // N[a,b]: number of neighbours with contribution in [a, b]. Degree is
      // bounded by k = β, so capped counts are exact. The templated sum
      // inlines the predicate (no per-activation std::function dispatch).
      auto range_count = [&](int lo, int hi) {
        return n.sum([&](State q) {
          if (!enc.is_pair(q)) return false;
          const int y = enc.x_of(q);
          return y >= lo && y <= hi;
        });
      };
      int next = x;
      if (x > k) {
        next = x - range_count(-enc.E, k);
      } else if (x < -k) {
        next = x + range_count(-k, enc.E);
      } else {
        next = x - range_count(-enc.E, -k - 1) + range_count(k + 1, enc.E);
      }
      DAWN_CHECK(next >= -enc.E && next <= enc.E);
      return enc.pair_id(next, role);
    };
    spec.verdict = [enc](State s) {
      return s == enc.reject_id() ? Verdict::Reject : Verdict::Accept;
    };
    spec.name = [enc](State s) { return enc.name(s); };
    out.detect_inner = std::make_shared<FunctionMachine>(spec);
  }

  // --- Layer 2: P_detect — absence detection for leaders. ---
  {
    AbsenceMachine::Spec spec;
    spec.inner = out.detect_inner;
    spec.num_labels = num_labels;
    spec.is_initiator = [enc](State s) {
      return enc.is_pair(s) && enc.role_of(s) == CancelEncoding::kLeader;
    };
    spec.detect = [enc, k](State s, const Support& support) -> State {
      const int x = enc.x_of(s);
      bool has_reject = false, has_error = false;
      bool all_small = true, all_negative = true;
      for (State q : support) {
        if (q == enc.reject_id()) {
          has_reject = true;
          continue;
        }
        if (q == enc.error_id()) {
          has_error = true;
          continue;
        }
        const int y = enc.x_of(q);
        const int role = enc.role_of(q);
        // Armed leaders in the support block both detections (the paper's
        // s ⊆ ...×{0} conditions, read to include L itself — see header).
        if (role == CancelEncoding::kArmDouble ||
            role == CancelEncoding::kArmReject) {
          all_small = all_negative = false;
        }
        if (std::abs(y) > k) all_small = false;
        if (y >= 0) all_negative = false;
      }
      if (has_reject) return enc.error_id();
      if (has_error) return enc.pair_id(x, CancelEncoding::kFollower);
      if (all_small) return enc.pair_id(x, CancelEncoding::kArmDouble);
      if (all_negative) return enc.pair_id(x, CancelEncoding::kArmReject);
      return s;  // not converged yet: remain a plain leader
    };
    out.detect = std::make_shared<AbsenceMachine>(std::move(spec));
  }

  // --- Layer 3: Lemma 4.9 — compile the absence detection (DAf). ---
  out.detect_machine = compile_absence(out.detect, k);

  // --- Layer 4+5: ⟨double⟩ / ⟨reject⟩ broadcasts, Lemma 4.7. ---
  out.bc_machine = compile_weak_broadcast(std::make_shared<BcOverlay>(
      out.detect_machine, enc, k, num_labels));

  // --- Layer 6: × Q_cancel input memory. ---
  {
    TaggedMachine::Spec spec;
    spec.inner = out.bc_machine;
    spec.num_labels = num_labels;
    auto bc = out.bc_machine;
    auto detect_m = out.detect_machine;
    spec.init = [bc, detect_m, enc, coeffs](Label l) {
      const int x0 = coeffs[static_cast<std::size_t>(l)];
      return std::make_pair(
          bc->embed(detect_m->embed(enc.pair_id(x0, CancelEncoding::kLeader))),
          static_cast<State>(x0 + enc.E));
    };
    spec.tag_name = [enc](State tag) {
      return "x0=" + std::to_string(tag - enc.E);
    };
    out.reset_tagged = std::make_shared<TaggedMachine>(spec);
  }

  // --- Layer 7+8: ⟨reset⟩, Lemma 4.7 — the final DAf automaton. ---
  out.machine = compile_weak_broadcast(std::make_shared<ResetOverlay>(
      out.bc_machine, out.detect_machine, out.reset_tagged, enc, num_labels));
  return out;
}

}  // namespace dawn
