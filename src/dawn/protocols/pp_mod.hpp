// Modular counting as a graph population protocol, via leader fusion —
// #ℓ ≡ r (mod m) on cliques, compiled to a DAF automaton by Lemma 4.10.
//
// Every agent starts as a leader carrying its own contribution (1 for the
// counted label, 0 otherwise). Two leaders fuse: one keeps the sum mod m,
// the other becomes a follower. A leader stamps its current value onto any
// follower it meets. Once a single leader remains — guaranteed under
// pseudo-stochastic fairness on a clique — its value is #ℓ mod m and every
// follower converges to it: stable consensus on value == r.
//
// Complements the strong-broadcast mod counter (parity_strong.hpp): same
// predicate, different communication mechanism — rendez-vous instead of
// broadcasts — so the two NL routes of the paper (Lemma 4.10 and Lemma 5.1)
// can be cross-checked against each other.
//
// Scope: cliques (the fusion argument needs any two leaders to eventually
// meet, and followers to meet the last leader; on sparse graphs a leader
// can be walled off exactly like the majority protocol's strong opinions).
#pragma once

#include <memory>

#include "dawn/extensions/population.hpp"

namespace dawn {

// State encoding: leader with value c = c; follower with value c = m + c.
GraphPopulationProtocol make_mod_population_protocol(int m, int r,
                                                     Label counted,
                                                     int num_labels);

// The compiled DAF automaton (β = 2).
std::shared_ptr<Machine> make_mod_population_daf(int m, int r, Label counted,
                                                 int num_labels);

}  // namespace dawn
