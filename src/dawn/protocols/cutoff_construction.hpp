// The Proposition C.6 construction, generic: a dAF automaton for ANY
// labelling predicate in Cutoff(K).
//
// Components: for each label i and level j in [1, K], the Lemma C.5
// threshold automaton deciding x_i >= j. An agent's component verdicts
// determine ⌈L⌉_K (c_i = max { j : x_i >= j }), and the formula outputs
// φ(⌈L⌉_K) = φ(L). Since every component stabilises (dAF, pseudo-stochastic
// fairness), the formula machine stabilises to the correct consensus —
// this realises "φ can be written as a disjunction over cutoff cells" of
// the paper's proof without enumerating the (K+1)^l cells syntactically.
//
// Also exposed: the Proposition C.4 special case (K = 1, built from the
// dAf flooding machines, so the result is a dAf automaton).
#pragma once

#include <memory>

#include "dawn/props/predicates.hpp"
#include "dawn/protocols/formula.hpp"

namespace dawn {

// Requires: pred admits cutoff K (φ(L) = φ(⌈L⌉_K)); this is the caller's
// obligation (checkable with props/classes.hpp on a window).
std::shared_ptr<FormulaMachine> make_cutoff_automaton(
    const LabellingPredicate& pred, int K);

// K = 1 via flooding machines: a dAf automaton (adversarial-robust).
std::shared_ptr<FormulaMachine> make_cutoff1_automaton(
    const LabellingPredicate& pred);

// lo <= x_target <= hi, assembled from two Lemma C.5 thresholds
// ("flock-of-birds with a ceiling"; a dAF automaton).
std::shared_ptr<FormulaMachine> make_interval_automaton(Label target, int lo,
                                                        int hi,
                                                        int num_labels);

}  // namespace dawn
