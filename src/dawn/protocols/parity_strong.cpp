#include "dawn/protocols/parity_strong.hpp"

#include "dawn/util/check.hpp"

namespace dawn {

std::shared_ptr<StrongBroadcastProtocol> make_mod_counter_protocol(
    int m, int r, Label counted, int num_labels) {
  DAWN_CHECK(m >= 2);
  DAWN_CHECK(r >= 0 && r < m);
  DAWN_CHECK(counted >= 0 && counted < num_labels);

  // State encoding: id = done * m + c, done ∈ {0,1}, c ∈ [0, m).
  auto protocol = std::make_shared<StrongBroadcastProtocol>();
  protocol->num_states = 2 * m;
  protocol->num_labels = num_labels;
  protocol->init = [m, counted](Label l) {
    return static_cast<State>(l == counted ? 0 : m);  // (pending,0) / (done,0)
  };
  protocol->broadcast = [m](State s) -> StrongBroadcastProtocol::Broadcast {
    const bool done = s >= m;
    const int c = s % m;
    if (done) {
      return {s, [](State q) { return q; }};  // silent broadcast
    }
    // Fire once: become done with incremented count; increment everyone.
    return {static_cast<State>(m + (c + 1) % m), [m](State q) {
              const int qc = q % m;
              const State base = q >= m ? m : 0;
              return static_cast<State>(base + (qc + 1) % m);
            }};
  };
  protocol->verdict = [m, r](State s) {
    return s % m == r ? Verdict::Accept : Verdict::Reject;
  };
  protocol->name = [m](State s) {
    return std::string(s >= m ? "done" : "pend") + std::to_string(s % m);
  };
  return protocol;
}

StrongToDaf make_mod_counter_daf(int m, int r, Label counted, int num_labels) {
  return strong_to_daf(make_mod_counter_protocol(m, r, counted, num_labels));
}

}  // namespace dawn
