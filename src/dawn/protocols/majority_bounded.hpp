// The Section 6.1 construction: a DAf-automaton for homogeneous threshold
// predicates φ(x_1..x_l) ⇔ a_1·x_1 + ... + a_l·x_l >= 0 on graphs of degree
// at most k — in particular majority (#a >= #b, coefficients (1, -1)) under
// *adversarial* scheduling, including the synchronous deterministic
// schedule. This is the paper's headline bounded-degree result
// (Proposition 6.3).
//
// The stack, assembled exactly as in the paper:
//
//   P_cancel  — local cancellation (⟨cancel⟩): each agent holds a
//     contribution x ∈ [-E, E], E = max(max|a_i|, 2k); agents with |x| > k
//     push units towards small neighbours each synchronous step. Preserves
//     Σx; converges to "all small" or "all negative" (Lemma 6.1).
//   P_detect  — P_cancel × {follower, L, L_double, L_□} plus error/reject
//     states {⊥, □}, with weak absence detection for the leaders: a leader
//     in L observes the support; if it contains □ it errors (⊥); if it
//     contains ⊥ it demotes to follower; if everything is small it arms a
//     doubling (L_double); if everything is negative it arms a rejection
//     (L_□). Compiled to a plain DAf machine by Lemma 4.9 (distance labels).
//   P_bc      — weak broadcasts over the compiled P_detect: ⟨double⟩ doubles
//     every follower's contribution (response composed with `last` to
//     handle agents caught mid-wave) and shoots other leaders to ⊥;
//     ⟨reject⟩ moves everyone to the rejecting state □. Compiled by
//     Lemma 4.7.
//   P_reset   — × Q_cancel memory plus ⟨reset⟩: an agent that committed ⊥
//     restarts everyone from their remembered inputs, making itself the new
//     (sole, tentatively) leader. Every reset strictly decreases the leader
//     count, so errors die out. Compiled by Lemma 4.7; the result is the
//     final DAf automaton with counting bound k.
//
// Deviations (documented in EXPERIMENTS.md): the paper's ⟨double⟩ response
// doubles y ∈ {-k+1..k-1}; we double y ∈ [-k, k], which is what the
// converged support guarantees and what preserves Σx exactly. The paper's
// detection conditions s ⊆ {-k..k}×{0} cannot hold literally (the observing
// leader's own state is in s); we read them as "every observed agent is a
// follower with small (resp. negative) contribution or a leader in L".
#pragma once

#include <memory>
#include <vector>

#include "dawn/automata/combinators.hpp"
#include "dawn/extensions/absence.hpp"
#include "dawn/extensions/broadcast.hpp"

namespace dawn {

// State encoding of the P_detect layer.
struct CancelEncoding {
  int E = 0;

  static constexpr int kFollower = 0;
  static constexpr int kLeader = 1;    // L
  static constexpr int kArmDouble = 2; // L_double
  static constexpr int kArmReject = 3; // L_□

  // Pair states (x, role), x in [-E, E].
  State pair_id(int x, int role) const;
  bool is_pair(State s) const;
  int x_of(State s) const;
  int role_of(State s) const;

  State error_id() const;   // ⊥
  State reject_id() const;  // □
  int num_states() const;
  std::string name(State s) const;
};

struct BoundedThresholdAutomaton {
  std::vector<int> coeffs;
  int k = 0;
  CancelEncoding enc;

  std::shared_ptr<FunctionMachine> detect_inner;          // ⟨cancel⟩ × roles
  std::shared_ptr<AbsenceMachine> detect;                 // P_detect
  std::shared_ptr<CompiledAbsenceMachine> detect_machine; // P'_detect
  std::shared_ptr<CompiledBroadcastMachine> bc_machine;   // P'_bc
  std::shared_ptr<TaggedMachine> reset_tagged;            // P'_bc × Q_cancel
  std::shared_ptr<CompiledBroadcastMachine> machine;      // the DAf automaton

  // Diagnostics: the committed P_detect state a final-machine state
  // represents.
  State committed_detect_of(State final_state) const;
};

// φ(x_1..x_l) ⇔ Σ coeffs[i]·x_i >= 0 on graphs of maximum degree <= k.
// Requires at least one coefficient != 0 and k >= 2.
BoundedThresholdAutomaton make_homogeneous_threshold_daf(
    std::vector<int> coeffs, int k);

// Majority #label0 >= #label1 (ties accept), degree bound k.
inline BoundedThresholdAutomaton make_majority_bounded(int k) {
  return make_homogeneous_threshold_daf({1, -1}, k);
}

}  // namespace dawn
