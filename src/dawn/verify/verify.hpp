// Protocol verification: exhaustively check an automaton against a
// labelling predicate over a window of inputs, using the exact deciders.
//
// This is the Peregrine-style workflow for this model family: enumerate
// label counts, enumerate topologies, decide each instance exactly (bottom
// SCCs for pseudo-stochastic fairness; the synchronous cycle for
// adversarial fairness of consistent automata), and report counterexamples
// — wrong verdicts AND consistency violations, which for stable-consensus
// automata are bugs just as much.
//
// Sweeps parallelise on two axes: across instances (instance_threads; the
// MachineFactory overloads give every worker its own machine so compiled
// automata can fan out too) and within an instance (budget.max_threads,
// forwarded to the sharded exploration engine). Budget-exhausted instances
// are reported separately from counterexamples — see VerifyReport::capped.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dawn/automata/machine.hpp"
#include "dawn/extensions/broadcast.hpp"
#include "dawn/extensions/population.hpp"
#include "dawn/graph/generators.hpp"
#include "dawn/props/predicates.hpp"
#include "dawn/semantics/budget.hpp"
#include "dawn/semantics/decision.hpp"
#include "dawn/semantics/trials.hpp"

namespace dawn {

struct VerifyOptions {
  // Label counts range over [0, count_bound] per label.
  std::int64_t count_bound = 3;
  // Skip inputs with fewer nodes (the paper convention needs >= 3; some
  // protocols also assume a minimum population).
  int min_nodes = 3;
  // Per-instance budget for the deciders; the ONE budget source (the
  // deprecated top-level max_configs mirror and its resolution precedence
  // dance are gone). budget.max_threads is the WITHIN-instance
  // worker count (default 1 — instance-level parallelism already saturates
  // a sweep of many small instances).
  ExploreBudget budget = {.max_configs = 2'000'000, .max_threads = 1,
                          .deadline_ms = 0};
  // Worker threads ACROSS instances (0 = all hardware threads). Overloads
  // taking a shared `const Machine&` clamp this to 1 unless the machine
  // reports parallel_step_safe(); pass a MachineFactory to parallelise
  // compiled/interning machines (each worker builds its own instance).
  int instance_threads = 0;
  // Also check the synchronous run (valid for adversarial-class automata;
  // for F-class automata synchronous runs need not stabilise).
  bool check_synchronous = false;
  // Which topologies to build per label count.
  bool cliques = true;
  bool cycles = true;
  bool lines = true;
  bool stars = true;
};

struct Counterexample {
  LabelCount counts;
  std::string topology;
  Decision decision = Decision::Unknown;
  bool expected_accept = false;
  std::string detail;
};

// An instance the decider could not finish within its budget. Kept apart
// from `failures`: a capped instance is "not yet checked", not a bug.
struct CappedInstance {
  LabelCount counts;
  std::string topology;
  UnknownReason reason = UnknownReason::ConfigCap;
};

struct VerifyReport {
  int instances = 0;
  std::vector<Counterexample> failures;
  // Instances whose decider exhausted its budget (config cap, deadline or
  // step cap). Non-empty capped => complete == false.
  std::vector<CappedInstance> capped;
  bool complete = true;

  bool ok() const { return failures.empty() && complete; }
  std::string summary() const;
};

// Verifies a plain machine under exact pseudo-stochastic semantics over the
// topology battery (and optionally the synchronous run). The shared-machine
// overload parallelises across instances only for parallel_step_safe()
// machines; the factory overload parallelises for any machine.
VerifyReport verify_machine(const Machine& machine,
                            const LabellingPredicate& pred,
                            const VerifyOptions& opts = {});
VerifyReport verify_machine(const MachineFactory& factory,
                            const LabellingPredicate& pred,
                            const VerifyOptions& opts = {});

// Verifies a machine on cliques only, via the counted semantics — scales to
// much larger windows than verify_machine.
VerifyReport verify_machine_on_cliques(const Machine& machine,
                                       const LabellingPredicate& pred,
                                       const VerifyOptions& opts = {});
VerifyReport verify_machine_on_cliques(const MachineFactory& factory,
                                       const LabellingPredicate& pred,
                                       const VerifyOptions& opts = {});

// Verifies a broadcast overlay under strong (singleton) broadcast
// semantics on counted cliques. Sequential across instances (overlay
// implementations carry no thread-safety contract).
VerifyReport verify_overlay_on_cliques(const BroadcastOverlay& overlay,
                                       const LabellingPredicate& pred,
                                       const VerifyOptions& opts = {});

// Verifies a graph population protocol on counted cliques. `promise`
// filters the inputs the protocol is specified for (e.g. no ties).
VerifyReport verify_population_on_cliques(
    const GraphPopulationProtocol& protocol, const LabellingPredicate& pred,
    const std::function<bool(const LabelCount&)>& promise = {},
    const VerifyOptions& opts = {});

}  // namespace dawn
