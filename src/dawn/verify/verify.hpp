// Protocol verification: exhaustively check an automaton against a
// labelling predicate over a window of inputs, using the exact deciders.
//
// This is the Peregrine-style workflow for this model family: enumerate
// label counts, enumerate topologies, decide each instance exactly (bottom
// SCCs for pseudo-stochastic fairness; the synchronous cycle for
// adversarial fairness of consistent automata), and report counterexamples
// — wrong verdicts AND consistency violations, which for stable-consensus
// automata are bugs just as much.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dawn/automata/machine.hpp"
#include "dawn/extensions/broadcast.hpp"
#include "dawn/extensions/population.hpp"
#include "dawn/graph/generators.hpp"
#include "dawn/props/predicates.hpp"
#include "dawn/semantics/decision.hpp"

namespace dawn {

struct VerifyOptions {
  // Label counts range over [0, count_bound] per label.
  std::int64_t count_bound = 3;
  // Skip inputs with fewer nodes (the paper convention needs >= 3; some
  // protocols also assume a minimum population).
  int min_nodes = 3;
  // Budget per instance for the explicit/counted deciders.
  std::size_t max_configs = 2'000'000;
  // Also check the synchronous run (valid for adversarial-class automata;
  // for F-class automata synchronous runs need not stabilise).
  bool check_synchronous = false;
  // Which topologies to build per label count.
  bool cliques = true;
  bool cycles = true;
  bool lines = true;
  bool stars = true;
};

struct Counterexample {
  LabelCount counts;
  std::string topology;
  Decision decision = Decision::Unknown;
  bool expected_accept = false;
  std::string detail;
};

struct VerifyReport {
  int instances = 0;
  std::vector<Counterexample> failures;
  // False if some instance exhausted the decider budget (those are reported
  // as failures with decision Unknown).
  bool complete = true;

  bool ok() const { return failures.empty() && complete; }
  std::string summary() const;
};

// Verifies a plain machine under exact pseudo-stochastic semantics over the
// topology battery (and optionally the synchronous run).
VerifyReport verify_machine(const Machine& machine,
                            const LabellingPredicate& pred,
                            const VerifyOptions& opts = {});

// Verifies a machine on cliques only, via the counted semantics — scales to
// much larger windows than verify_machine.
VerifyReport verify_machine_on_cliques(const Machine& machine,
                                       const LabellingPredicate& pred,
                                       const VerifyOptions& opts = {});

// Verifies a broadcast overlay under strong (singleton) broadcast
// semantics on counted cliques.
VerifyReport verify_overlay_on_cliques(const BroadcastOverlay& overlay,
                                       const LabellingPredicate& pred,
                                       const VerifyOptions& opts = {});

// Verifies a graph population protocol on counted cliques. `promise`
// filters the inputs the protocol is specified for (e.g. no ties).
VerifyReport verify_population_on_cliques(
    const GraphPopulationProtocol& protocol, const LabellingPredicate& pred,
    const std::function<bool(const LabelCount&)>& promise = {},
    const VerifyOptions& opts = {});

}  // namespace dawn
