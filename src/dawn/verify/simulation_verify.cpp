#include "dawn/verify/simulation_verify.hpp"

#include <numeric>

#include "dawn/props/classes.hpp"

namespace dawn {

VerifyReport verify_by_simulation(const Machine& machine,
                                  const LabellingPredicate& pred,
                                  const SimVerifyOptions& opts) {
  VerifyReport report;
  auto topology = opts.topology
                      ? opts.topology
                      : [](const std::vector<Label>& labels) {
                          return make_cycle(labels);
                        };
  for_each_count(pred.num_labels, opts.count_bound, [&](const LabelCount& L) {
    const auto total = std::accumulate(L.begin(), L.end(), std::int64_t{0});
    if (total < opts.min_nodes) return;
    const Graph g = topology(labels_from_count(L));
    const bool expected = pred(L);
    for (auto& sched : make_adversary_battery(opts.scheduler_seed)) {
      const SimulateResult r = simulate(machine, g, *sched, opts.simulate);
      ++report.instances;
      if (!r.converged) {
        report.complete = false;
        report.failures.push_back(
            {L, sched->name(), Decision::Unknown, expected, "not converged"});
        continue;
      }
      const bool accept = r.verdict == Verdict::Accept;
      if (accept != expected) {
        report.failures.push_back({L, sched->name(),
                                   accept ? Decision::Accept : Decision::Reject,
                                   expected, "simulated"});
      }
    }
  });
  return report;
}

}  // namespace dawn
