// Simulation-based verification for machines whose configuration spaces are
// beyond the exact deciders (the compiled Section 6.1 / Lemma 5.1 stacks).
//
// Runs the machine on every window input over a topology family, under a
// battery of schedulers, and compares the stabilised verdict with the
// predicate. Statistical rather than exact (stabilisation is declared after
// a consensus window), which is the honest tool at this scale; the exact
// deciders cover the smaller instances.
#pragma once

#include <functional>

#include "dawn/sched/scheduler.hpp"
#include "dawn/semantics/simulate.hpp"
#include "dawn/verify/verify.hpp"

namespace dawn {

struct SimVerifyOptions {
  std::int64_t count_bound = 3;
  int min_nodes = 3;
  SimulateOptions simulate;
  std::uint64_t scheduler_seed = 1;
  // Builds the graph for a label multiset; defaults to a cycle.
  std::function<Graph(const std::vector<Label>&)> topology;
};

// Verdicts from the full adversary battery on every window input.
VerifyReport verify_by_simulation(const Machine& machine,
                                  const LabellingPredicate& pred,
                                  const SimVerifyOptions& opts = {});

}  // namespace dawn
