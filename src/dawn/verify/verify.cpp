#include "dawn/verify/verify.hpp"

#include <numeric>
#include <sstream>

#include "dawn/extensions/broadcast_engine.hpp"
#include "dawn/extensions/population_engine.hpp"
#include "dawn/props/classes.hpp"
#include "dawn/semantics/clique_counted.hpp"
#include "dawn/semantics/explicit_space.hpp"
#include "dawn/semantics/sync_run.hpp"

namespace dawn {
namespace {

void record(VerifyReport& report, const LabelCount& L,
            const std::string& topology, Decision decision, bool expected,
            const std::string& detail = "") {
  ++report.instances;
  const bool good = (decision == Decision::Accept && expected) ||
                    (decision == Decision::Reject && !expected);
  if (good) return;
  if (decision == Decision::Unknown) report.complete = false;
  report.failures.push_back({L, topology, decision, expected, detail});
}

std::int64_t total(const LabelCount& L) {
  return std::accumulate(L.begin(), L.end(), std::int64_t{0});
}

template <typename Fn>
void for_each_window_count(const LabellingPredicate& pred,
                           const VerifyOptions& opts, Fn fn) {
  for_each_count(pred.num_labels, opts.count_bound, [&](const LabelCount& L) {
    if (total(L) < opts.min_nodes) return;
    fn(L);
  });
}

}  // namespace

std::string VerifyReport::summary() const {
  std::ostringstream out;
  out << instances << " instances, " << failures.size() << " failures"
      << (complete ? "" : " (incomplete: budget exhausted)");
  for (std::size_t i = 0; i < failures.size() && i < 5; ++i) {
    const auto& f = failures[i];
    out << "\n  L=(";
    for (std::size_t l = 0; l < f.counts.size(); ++l) {
      out << (l ? "," : "") << f.counts[l];
    }
    out << ") on " << f.topology << ": got " << to_string(f.decision)
        << ", expected " << (f.expected_accept ? "accept" : "reject");
    if (!f.detail.empty()) out << " [" << f.detail << "]";
  }
  return out.str();
}

VerifyReport verify_machine(const Machine& machine,
                            const LabellingPredicate& pred,
                            const VerifyOptions& opts) {
  VerifyReport report;
  for_each_window_count(pred, opts, [&](const LabelCount& L) {
    const bool expected = pred(L);
    const auto labels = labels_from_count(L);
    std::vector<std::pair<std::string, Graph>> graphs;
    if (opts.cliques) graphs.emplace_back("clique", make_clique(labels));
    if (opts.cycles && labels.size() >= 3) {
      graphs.emplace_back("cycle", make_cycle(labels));
    }
    if (opts.lines && labels.size() >= 2) {
      graphs.emplace_back("line", make_line(labels));
    }
    if (opts.stars && labels.size() >= 2) {
      std::vector<Label> leaves(labels.begin() + 1, labels.end());
      graphs.emplace_back("star", make_star(labels.front(), leaves));
    }
    for (const auto& [name, g] : graphs) {
      const auto r =
          decide_pseudo_stochastic(machine, g, {.max_configs = opts.max_configs});
      record(report, L, name, r.decision, expected);
      if (opts.check_synchronous) {
        const auto s = decide_synchronous(machine, g);
        record(report, L, name + "/sync", s.decision, expected);
      }
    }
  });
  return report;
}

VerifyReport verify_machine_on_cliques(const Machine& machine,
                                       const LabellingPredicate& pred,
                                       const VerifyOptions& opts) {
  VerifyReport report;
  for_each_window_count(pred, opts, [&](const LabelCount& L) {
    const auto r = decide_clique_pseudo_stochastic(
        machine, L, {.max_configs = opts.max_configs});
    record(report, L, "clique(counted)", r.decision, pred(L));
  });
  return report;
}

VerifyReport verify_overlay_on_cliques(const BroadcastOverlay& overlay,
                                       const LabellingPredicate& pred,
                                       const VerifyOptions& opts) {
  VerifyReport report;
  for_each_window_count(pred, opts, [&](const LabelCount& L) {
    const auto r = decide_overlay_strong_counted(
        overlay, L, {.max_configs = opts.max_configs});
    record(report, L, "clique(strong-bc)", r.decision, pred(L));
  });
  return report;
}

VerifyReport verify_population_on_cliques(
    const GraphPopulationProtocol& protocol, const LabellingPredicate& pred,
    const std::function<bool(const LabelCount&)>& promise,
    const VerifyOptions& opts) {
  VerifyReport report;
  for_each_window_count(pred, opts, [&](const LabelCount& L) {
    if (promise && !promise(L)) return;
    const auto r = decide_population_counted(protocol, L,
                                             {.max_configs = opts.max_configs});
    record(report, L, "clique(rendezvous)", r.decision, pred(L));
  });
  return report;
}

}  // namespace dawn
