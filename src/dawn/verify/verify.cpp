#include "dawn/verify/verify.hpp"

#include <cstdio>
#include <memory>
#include <mutex>
#include <numeric>
#include <sstream>
#include <utility>

#include "dawn/extensions/broadcast_engine.hpp"
#include "dawn/extensions/population_engine.hpp"
#include "dawn/props/classes.hpp"
#include "dawn/semantics/clique_counted.hpp"
#include "dawn/semantics/explicit_space.hpp"
#include "dawn/semantics/sync_run.hpp"

namespace dawn {
namespace {

// One decided (instance, topology) pair, produced inside a worker and merged
// into the report in deterministic instance order afterwards.
struct InstanceEntry {
  LabelCount counts;
  std::string topology;
  Decision decision = Decision::Unknown;
  UnknownReason reason = UnknownReason::None;
  bool expected = false;
  std::string detail;
};

bool is_budget_reason(UnknownReason reason) {
  return reason == UnknownReason::ConfigCap ||
         reason == UnknownReason::Deadline ||
         reason == UnknownReason::StepCap;
}

void record(VerifyReport& report, const InstanceEntry& e) {
  ++report.instances;
  const bool good = (e.decision == Decision::Accept && e.expected) ||
                    (e.decision == Decision::Reject && !e.expected);
  if (good) return;
  if (e.decision == Decision::Unknown && is_budget_reason(e.reason)) {
    // Budget exhaustion is "not yet checked", not a counterexample.
    report.complete = false;
    report.capped.push_back({e.counts, e.topology, e.reason});
    return;
  }
  if (e.decision == Decision::Unknown) report.complete = false;
  report.failures.push_back(
      {e.counts, e.topology, e.decision, e.expected, e.detail});
}

std::int64_t total(const LabelCount& L) {
  return std::accumulate(L.begin(), L.end(), std::int64_t{0});
}

}  // namespace

namespace {

// Enumerates the verification window up front so instances can be dealt to
// workers; `expected` is evaluated here (sequentially) so predicates need
// not be thread-safe.
struct Instance {
  LabelCount counts;
  bool expected = false;
};

std::vector<Instance> enumerate_window(
    const LabellingPredicate& pred, const VerifyOptions& opts,
    const std::function<bool(const LabelCount&)>& promise = {}) {
  std::vector<Instance> window;
  for_each_count(pred.num_labels, opts.count_bound, [&](const LabelCount& L) {
    if (total(L) < opts.min_nodes) return;
    if (promise && !promise(L)) return;
    window.push_back({L, pred(L)});
  });
  return window;
}

void append_counts(std::ostringstream& out, const LabelCount& counts) {
  out << "L=(";
  for (std::size_t l = 0; l < counts.size(); ++l) {
    out << (l ? "," : "") << counts[l];
  }
  out << ")";
}

// Decides every topology of one instance. Uses the unified facade: Auto
// dispatches cliques (and two-node stars/lines, which are cliques) to the
// counted engine and everything else to the sharded explicit engine.
std::vector<InstanceEntry> decide_instance(const Machine& machine,
                                           const Instance& inst,
                                           const ExploreBudget& budget,
                                           const VerifyOptions& opts) {
  std::vector<InstanceEntry> out;
  const auto labels = labels_from_count(inst.counts);
  std::vector<std::pair<std::string, Graph>> graphs;
  if (opts.cliques) graphs.emplace_back("clique", make_clique(labels));
  if (opts.cycles && labels.size() >= 3) {
    graphs.emplace_back("cycle", make_cycle(labels));
  }
  if (opts.lines && labels.size() >= 2) {
    graphs.emplace_back("line", make_line(labels));
  }
  if (opts.stars && labels.size() >= 2) {
    std::vector<Label> leaves(labels.begin() + 1, labels.end());
    graphs.emplace_back("star", make_star(labels.front(), leaves));
  }
  for (const auto& [name, g] : graphs) {
    DecisionRequest req;
    req.budget = budget;
    const DecisionReport r = decide(machine, g, req);
    out.push_back({inst.counts, name, r.decision, r.unknown_reason,
                   inst.expected, ""});
    if (opts.check_synchronous) {
      DecisionRequest sreq;
      sreq.method = DecideMethod::Synchronous;
      sreq.budget = budget;
      const DecisionReport s = decide(machine, g, sreq);
      out.push_back({inst.counts, name + "/sync", s.decision, s.unknown_reason,
                     inst.expected, ""});
    }
  }
  return out;
}

VerifyReport verify_machine_impl(const MachineFactory& factory,
                                 const LabellingPredicate& pred,
                                 const VerifyOptions& opts, int threads) {
  const auto window = enumerate_window(pred, opts);
  const ExploreBudget budget = opts.budget;
  std::vector<std::vector<InstanceEntry>> slots(window.size());
  parallel_for(window.size(), threads, [&](std::size_t i) {
    const auto machine = factory();
    slots[i] = decide_instance(*machine, window[i], budget, opts);
  });
  VerifyReport report;
  for (const auto& entries : slots) {
    for (const auto& e : entries) record(report, e);
  }
  return report;
}

VerifyReport verify_cliques_impl(const MachineFactory& factory,
                                 const LabellingPredicate& pred,
                                 const VerifyOptions& opts, int threads) {
  const auto window = enumerate_window(pred, opts);
  const ExploreBudget budget = opts.budget;
  std::vector<InstanceEntry> slots(window.size());
  parallel_for(window.size(), threads, [&](std::size_t i) {
    const auto machine = factory();
    const auto r =
        decide_clique_pseudo_stochastic_parallel(*machine, window[i].counts,
                                                 budget);
    slots[i] = {window[i].counts, "clique(counted)", r.decision, r.reason,
                window[i].expected, ""};
  });
  VerifyReport report;
  for (const auto& e : slots) record(report, e);
  return report;
}

// Wraps a caller-owned machine in a non-owning factory. Safe to call from
// several workers only when the machine is parallel_step_safe().
MachineFactory borrow(const Machine& machine) {
  const Machine* raw = &machine;
  return [raw] {
    return std::shared_ptr<const Machine>(raw, [](const Machine*) {});
  };
}

int shared_machine_threads(const Machine& machine, const VerifyOptions& opts) {
  return machine.parallel_step_safe() ? opts.instance_threads : 1;
}

}  // namespace

std::string VerifyReport::summary() const {
  std::ostringstream out;
  out << instances << " instances, " << failures.size() << " failures";
  if (!capped.empty()) {
    out << ", " << capped.size() << " capped (budget exhausted)";
  } else if (!complete) {
    out << " (incomplete)";
  }
  for (std::size_t i = 0; i < failures.size() && i < 5; ++i) {
    const auto& f = failures[i];
    out << "\n  ";
    append_counts(out, f.counts);
    out << " on " << f.topology << ": got " << to_string(f.decision)
        << ", expected " << (f.expected_accept ? "accept" : "reject");
    if (!f.detail.empty()) out << " [" << f.detail << "]";
  }
  for (std::size_t i = 0; i < capped.size() && i < 5; ++i) {
    const auto& c = capped[i];
    out << "\n  capped ";
    append_counts(out, c.counts);
    out << " on " << c.topology << " (" << to_string(c.reason) << ")";
  }
  return out.str();
}

VerifyReport verify_machine(const Machine& machine,
                            const LabellingPredicate& pred,
                            const VerifyOptions& opts) {
  return verify_machine_impl(borrow(machine), pred, opts,
                             shared_machine_threads(machine, opts));
}

VerifyReport verify_machine(const MachineFactory& factory,
                            const LabellingPredicate& pred,
                            const VerifyOptions& opts) {
  return verify_machine_impl(factory, pred, opts, opts.instance_threads);
}

VerifyReport verify_machine_on_cliques(const Machine& machine,
                                       const LabellingPredicate& pred,
                                       const VerifyOptions& opts) {
  return verify_cliques_impl(borrow(machine), pred, opts,
                             shared_machine_threads(machine, opts));
}

VerifyReport verify_machine_on_cliques(const MachineFactory& factory,
                                       const LabellingPredicate& pred,
                                       const VerifyOptions& opts) {
  return verify_cliques_impl(factory, pred, opts, opts.instance_threads);
}

VerifyReport verify_overlay_on_cliques(const BroadcastOverlay& overlay,
                                       const LabellingPredicate& pred,
                                       const VerifyOptions& opts) {
  const auto window = enumerate_window(pred, opts);
  const ExploreBudget budget = opts.budget;
  VerifyReport report;
  for (const Instance& inst : window) {
    const auto r = decide_overlay_strong_counted(overlay, inst.counts, budget);
    record(report, {inst.counts, "clique(strong-bc)", r.decision, r.reason,
                    inst.expected, ""});
  }
  return report;
}

VerifyReport verify_population_on_cliques(
    const GraphPopulationProtocol& protocol, const LabellingPredicate& pred,
    const std::function<bool(const LabelCount&)>& promise,
    const VerifyOptions& opts) {
  const auto window = enumerate_window(pred, opts, promise);
  const ExploreBudget budget = opts.budget;
  VerifyReport report;
  for (const Instance& inst : window) {
    const auto r = decide_population_counted(protocol, inst.counts, budget);
    record(report, {inst.counts, "clique(rendezvous)", r.decision, r.reason,
                    inst.expected, ""});
  }
  return report;
}

}  // namespace dawn
