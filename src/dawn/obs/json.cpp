#include "dawn/obs/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "dawn/util/check.hpp"

namespace dawn::obs {

void JsonValue::push_back(JsonValue v) {
  DAWN_CHECK(kind_ == Kind::Array);
  items_.emplace_back(std::string{}, std::move(v));
}

std::size_t JsonValue::size() const { return items_.size(); }

JsonValue& JsonValue::set(const std::string& key, JsonValue v) {
  DAWN_CHECK(kind_ == Kind::Object);
  for (auto& [k, existing] : items_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  items_.emplace_back(key, std::move(v));
  return items_.back().second;
}

const JsonValue* JsonValue::get(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : items_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out += '"';
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::Null:
      out += "null";
      break;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::Int:
      out += std::to_string(int_);
      break;
    case Kind::Double: {
      if (!std::isfinite(double_)) {
        out += "null";  // JSON has no NaN/Inf
        break;
      }
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.10g", double_);
      out += buf;
      // Keep the int/double distinction visible on re-parse.
      if (out.find_first_of(".eE", out.size() - std::strlen(buf)) ==
          std::string::npos) {
        out += ".0";
      }
      break;
    }
    case Kind::String:
      escape_into(out, string_);
      break;
    case Kind::Array: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        items_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::Object: {
      out += '{';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        newline_indent(out, indent, depth + 1);
        escape_into(out, items_[i].first);
        out += indent > 0 ? ": " : ":";
        items_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error = {};

  bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool parse_hex4(unsigned& code) {
    if (pos + 4 > text.size()) return fail("short \\u escape");
    code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text[pos++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else return fail("bad \\u escape");
    }
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return fail("dangling escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            if (!parse_hex4(code)) return false;
            if (code >= 0xdc00 && code <= 0xdfff) {
              return fail("lone low surrogate in \\u escape");
            }
            if (code >= 0xd800 && code <= 0xdbff) {
              // A high surrogate is only valid as the first half of a
              // \uXXXX\uXXXX pair encoding a supplementary-plane character.
              if (pos + 2 > text.size() || text[pos] != '\\' ||
                  text[pos + 1] != 'u') {
                return fail("unpaired high surrogate in \\u escape");
              }
              pos += 2;
              unsigned low = 0;
              if (!parse_hex4(low)) return false;
              if (low < 0xdc00 || low > 0xdfff) {
                return fail("unpaired high surrogate in \\u escape");
              }
              code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
            }
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else if (code < 0x10000) {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xf0 | (code >> 18));
              out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default:
            return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out = JsonValue::object();
      skip_ws();
      if (pos < text.size() && text[pos] == '}') { ++pos; return true; }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (!consume(':')) return false;
        JsonValue v;
        if (!parse_value(v)) return false;
        out.set(key, std::move(v));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') { ++pos; continue; }
        return consume('}');
      }
    }
    if (c == '[') {
      ++pos;
      out = JsonValue::array();
      skip_ws();
      if (pos < text.size() && text[pos] == ']') { ++pos; return true; }
      while (true) {
        JsonValue v;
        if (!parse_value(v)) return false;
        out.push_back(std::move(v));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') { ++pos; continue; }
        return consume(']');
      }
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = JsonValue(std::move(s));
      return true;
    }
    if (text.compare(pos, 4, "true") == 0) { pos += 4; out = JsonValue(true); return true; }
    if (text.compare(pos, 5, "false") == 0) { pos += 5; out = JsonValue(false); return true; }
    if (text.compare(pos, 4, "null") == 0) { pos += 4; out = JsonValue(); return true; }
    // Number.
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    bool is_double = false;
    while (pos < text.size()) {
      const char d = text[pos];
      if (d >= '0' && d <= '9') { ++pos; continue; }
      if (d == '.' || d == 'e' || d == 'E' || d == '+' || d == '-') {
        if (d == '.' || d == 'e' || d == 'E') is_double = true;
        // '+'/'-' only valid inside an exponent; accept loosely, strtod
        // validates below.
        if (d == '+' || (d == '-' && pos > start)) {
          if (!is_double) break;
        }
        ++pos;
        continue;
      }
      break;
    }
    if (pos == start) return fail("unexpected character");
    const std::string token(text.substr(start, pos - start));
    // Number range contract (docs/OBSERVABILITY.md): integer tokens must
    // fit int64 — anything larger is a named parse error, never a silent
    // saturation to LLONG_MAX. Doubles reject overflow to ±HUGE_VAL;
    // gradual underflow to (sub)normals or 0.0 is accepted as the closest
    // representable value.
    if (is_double) {
      char* end = nullptr;
      errno = 0;
      const double v = std::strtod(token.c_str(), &end);
      if (end == nullptr || *end != '\0') return fail("bad number");
      if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
        return fail("number out of double range");
      }
      out = JsonValue(v);
    } else {
      char* end = nullptr;
      errno = 0;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') return fail("bad number");
      if (errno == ERANGE) return fail("integer out of int64 range");
      out = JsonValue(v);
    }
    return true;
  }
};

}  // namespace

std::optional<JsonValue> JsonValue::parse(std::string_view text,
                                          std::string* error) {
  Parser p{text};
  JsonValue v;
  if (!p.parse_value(v)) {
    if (error != nullptr) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.pos != p.text.size()) {
    if (error != nullptr) {
      *error = "trailing garbage at offset " + std::to_string(p.pos);
    }
    return std::nullopt;
  }
  return v;
}

}  // namespace dawn::obs
