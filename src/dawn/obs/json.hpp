// Minimal ordered JSON value: enough for the observability layer.
//
// The exporter (export.hpp) writes schema-versioned BENCH_*.json files, the
// trace log (trace_log.hpp) emits JSONL events, and the schema checker tool
// parses them back — all through this one value type, so the writer and the
// validator can never drift apart. Objects preserve insertion order (reports
// stay diffable across runs); numbers keep the int/double distinction
// (counters round-trip exactly).
//
// Deliberately not a general JSON library: no comments, no NaN/Inf (dumped
// as null), UTF-8 passed through verbatim, \uXXXX parsed for BMP only.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dawn::obs {

class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() = default;                     // null
  JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
  JsonValue(int v) : kind_(Kind::Int), int_(v) {}
  JsonValue(long v) : kind_(Kind::Int), int_(v) {}
  JsonValue(long long v) : kind_(Kind::Int), int_(v) {}
  JsonValue(unsigned v) : kind_(Kind::Int), int_(v) {}
  JsonValue(unsigned long v) : kind_(Kind::Int), int_(static_cast<std::int64_t>(v)) {}
  JsonValue(unsigned long long v) : kind_(Kind::Int), int_(static_cast<std::int64_t>(v)) {}
  JsonValue(double v) : kind_(Kind::Double), double_(v) {}
  JsonValue(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
  JsonValue(std::string_view s) : kind_(Kind::String), string_(s) {}
  JsonValue(const char* s) : kind_(Kind::String), string_(s) {}

  static JsonValue array() { JsonValue v; v.kind_ = Kind::Array; return v; }
  static JsonValue object() { JsonValue v; v.kind_ = Kind::Object; return v; }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_scalar() const {
    return kind_ == Kind::Bool || kind_ == Kind::Int || kind_ == Kind::Double ||
           kind_ == Kind::String;
  }

  // Scalar access; the caller is expected to have checked kind().
  bool as_bool() const { return bool_; }
  std::int64_t as_int() const { return int_; }
  // Numeric value of an Int or Double.
  double as_double() const {
    return kind_ == Kind::Int ? static_cast<double>(int_) : double_;
  }
  const std::string& as_string() const { return string_; }

  // Array access.
  void push_back(JsonValue v);
  std::size_t size() const;
  const JsonValue& at(std::size_t i) const { return items_[i].second; }
  JsonValue& at(std::size_t i) { return items_[i].second; }

  // Object access (insertion-ordered; set replaces an existing key in place).
  JsonValue& set(const std::string& key, JsonValue v);
  const JsonValue* get(const std::string& key) const;
  JsonValue* get(const std::string& key) {
    return const_cast<JsonValue*>(
        static_cast<const JsonValue*>(this)->get(key));
  }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return items_;
  }

  // Serialisation. indent = 0 gives one line; > 0 pretty-prints.
  std::string dump(int indent = 0) const;

  // Strict parse of one JSON document (trailing whitespace allowed). On
  // failure returns nullopt and, if given, fills `error` with a message
  // carrying the byte offset.
  static std::optional<JsonValue> parse(std::string_view text,
                                        std::string* error = nullptr);

  bool operator==(const JsonValue& other) const = default;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  // Array elements (first empty) or object members.
  std::vector<std::pair<std::string, JsonValue>> items_;
};

}  // namespace dawn::obs
