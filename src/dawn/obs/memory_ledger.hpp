// MemoryLedger: unified byte-level accounting of where exploration memory
// goes.
//
// Before this layer each engine surfaced its own ad-hoc number
// (ExploreStats::store_bytes, the explore.store_bytes gauge) and the other
// allocations — frontier buffers, edge lists, interner layers, SoA trial
// blocks — were invisible. The ledger is one fixed enum-indexed account
// array, filled by the engines at the end of a run and surfaced through
// DecisionReport::memory and the BenchReport "telemetry" section (schema
// v1.2).
//
// Determinism contract: every account is computed from thread-count-
// invariant quantities only (reachable-set sizes, frontier peaks, edge
// counts, per-workspace layouts), so a DecisionReport's ledger is
// bit-identical for every thread count and regardless of whether spans or
// heartbeats are enabled. Engines do NOT fill store accounts on capped or
// deadline-aborted runs — what the store holds at an abort is scheduling
// noise. Values are estimates (container layouts are implementation-
// defined) but are measured the same way everywhere, so ratios across
// stores and PRs are meaningful.
#pragma once

#include <array>
#include <cstdint>

namespace dawn::obs {

class JsonValue;

enum class MemoryAccount : std::uint8_t {
  VectorStoreBytes,  // ShardedConfigStore occupancy (nodes + buckets + values)
  PackedStoreBytes,  // PackedConfigStore arenas + hashes + index slots
  InternerBytes,     // lazily-interned machine states, all compiled layers
  FrontierBytes,     // peak BFS frontier (entries + config payloads)
  EdgeBytes,         // exploration edge buffers at merge time
  TrialBlockBytes,   // one SoA batched-trial workspace (lanes, memo, CSR)
  // Tiered (out-of-core) store accounts. Resident = the always-in-memory
  // hash index plus any not-yet-spilled arena words at finalize; the spill
  // accounts are cumulative bytes written to the unlinked spill files.
  // Spilling happens at level boundaries against level-end store contents,
  // so all four are thread-count-invariant like every other account.
  TieredResidentBytes,  // TieredConfigStore in-memory footprint at finalize
  SpillArenaBytes,      // packed config words written to the arena file
  SpillFrontierBytes,   // delta-encoded frontier levels written to disk
  SpillEdgeBytes,       // (src,dst) gid pairs written to the edge spool
  kCount,
};

inline constexpr std::size_t kNumMemoryAccounts =
    static_cast<std::size_t>(MemoryAccount::kCount);

// Registry names, stable across PRs (heartbeats and reports reference them).
const char* name(MemoryAccount a);

struct MemoryLedger {
  std::array<std::uint64_t, kNumMemoryAccounts> bytes{};

  std::uint64_t get(MemoryAccount a) const {
    return bytes[static_cast<std::size_t>(a)];
  }
  void set_max(MemoryAccount a, std::uint64_t value) {
    auto& slot = bytes[static_cast<std::size_t>(a)];
    if (value > slot) slot = value;
  }
  void add(MemoryAccount a, std::uint64_t value) {
    bytes[static_cast<std::size_t>(a)] += value;
  }

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const std::uint64_t b : bytes) sum += b;
    return sum;
  }
  bool empty() const { return total() == 0; }

  // Deterministic merge: per-account max (accounts are peak footprints).
  void merge(const MemoryLedger& other) {
    for (std::size_t i = 0; i < kNumMemoryAccounts; ++i) {
      if (other.bytes[i] > bytes[i]) bytes[i] = other.bytes[i];
    }
  }

  bool operator==(const MemoryLedger&) const = default;

  // Named snapshot; zero accounts are omitted so reports stay small.
  JsonValue to_json() const;
};

#ifndef DAWN_OBS_DISABLED

namespace detail {
// The current thread's ambient ledger; null = disabled (the default).
// Installed via obs::TelemetryScope (telemetry.hpp); decide() points it at
// DecisionReport::memory.
inline thread_local MemoryLedger* t_ledger = nullptr;
}  // namespace detail

inline MemoryLedger* ledger() { return detail::t_ledger; }

#else

inline MemoryLedger* ledger() { return nullptr; }

#endif  // DAWN_OBS_DISABLED

}  // namespace dawn::obs
