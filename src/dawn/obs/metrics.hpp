// Metrics registry: named counters, gauges, and histogram-style timers,
// thread-local on the hot path.
//
// Design constraints (docs/OBSERVABILITY.md):
//
//  * Zero cost when disabled. No sink is installed by default; every
//    instrumentation point is a thread-local load + branch, and the whole
//    layer compiles away under -DDAWN_OBS_DISABLED. The step engines keep
//    their own plain member counters (see automata/run.hpp) and the driver
//    harvests them once per run, so the per-step inner loops carry NO
//    metrics code at all.
//  * Deterministic aggregation. Counters merge by addition and gauges by
//    max, in trial order, so the parallel trial runner's merged metrics are
//    bit-identical for every thread count. Timers record wall-clock
//    nanoseconds and are explicitly OUTSIDE the determinism contract.
//  * No locks, no allocation. Metrics are fixed enum-indexed arrays; a trial
//    owns its RunMetrics and the runner merges after the joins.
//
// Usage:
//   obs::RunMetrics m;
//   {
//     obs::MetricsScope scope(m);          // installs the thread-local sink
//     ... instrumented code runs ...       // obs::count(...) lands in m
//   }
//   m.to_json();                           // named snapshot for the exporter
#pragma once

#include <array>
#include <chrono>
#include <cstdint>

namespace dawn::obs {

class JsonValue;

// Monotonic event counts. Merge: addition.
enum class Counter : std::uint16_t {
  SimRuns,               // simulate() invocations
  SimSteps,              // scheduler steps driven
  SimActivations,        // node activations (sum of selection sizes)
  SimCommits,            // node state writes that changed a state
  SimConverged,          // runs that hit the stable-window criterion
  ConsensusEstablished,  // Neutral -> uniform verdict transitions
  ConsensusLost,         // uniform verdict lost after being established
  SchedGreedyWasted,     // greedy adversary: silent selections found
  SchedGreedyForcedSweeps,  // greedy adversary: fairness sweeps started
  SchedPermutationShuffles, // permutation scheduler: fresh sweep orders
  InternerInserts,       // lazily-interned states created (all layers)
  OverlaySteps,          // abstract broadcast overlay: neighbourhood steps
  OverlayBroadcasts,     // abstract broadcast overlay: broadcast rounds
  AbsenceSuperSteps,     // abstract absence semantics: super-steps
  AbsenceHangs,          // absence super-steps that hung (no initiator)
  PopulationSteps,       // population protocol: pair interactions
  TraceEventsDropped,    // trace log events beyond capacity
  ExploreConfigs,        // explicit exploration: configurations interned
  ExploreEdges,          // explicit exploration: transitions generated
  ExploreLevels,         // explicit exploration: BFS levels (frontier waves)
  ExploreSteals,         // explicit exploration: cross-worker chunk claims;
                         // scheduling-dependent, excluded from determinism
  ExploreSpillEvents,    // tiered store: level-boundary spill passes
  ExploreSpillBytes,     // tiered store: bytes written to spill files
                         // (arena + frontier levels + edge spool)
  NetConnections,        // dawnd: connections accepted
  NetRequests,           // dawnd: request frames handled (all actions)
  NetErrors,             // dawnd: error frames sent
  NetCacheHits,          // dawnd: Decide requests served from the result cache
  NetDistSessions,       // distributed worker sessions adopted (shard-init)
  NetDistPushes,         // frontier-push frames sent (worker + coordinator)
  NetDistPushedConfigs,  // configurations routed to a non-owning peer
  NetDistBarriers,       // level barriers completed by a coordinator
  kCount,
};

// Level snapshots. Merge: maximum.
enum class Gauge : std::uint16_t {
  MaxSelectionSize,      // largest selection a run applied
  CensusDistinctStates,  // census snapshot: distinct machine states
  CensusDistinctConfigs, // census snapshot: distinct configurations
  InternerPeakStates,    // largest single interner observed
  ExploreShardPeak,      // explicit exploration: largest store shard
  ExploreFrontierPeak,   // explicit exploration: largest BFS frontier
  ExploreThreads,        // explicit exploration: workers actually used
  ExploreStoreBytes,     // explicit exploration: config-store occupancy
  ExploreResidentBytes,  // tiered exploration: resident footprint at finalize
  NetInflightPeak,       // dawnd: most jobs queued or running at once
  kCount,
};

// Wall-clock stage timings (RAII Stopwatch). Merge: count/total add, max max.
// NOT part of the determinism contract.
enum class Timer : std::uint16_t {
  SimulateTotal,      // one simulate() call
  AbsenceSuperStep,   // one abstract absence super-step
  OverlayBroadcast,   // one abstract broadcast round
  kCount,
};

inline constexpr std::size_t kNumCounters = static_cast<std::size_t>(Counter::kCount);
inline constexpr std::size_t kNumGauges = static_cast<std::size_t>(Gauge::kCount);
inline constexpr std::size_t kNumTimers = static_cast<std::size_t>(Timer::kCount);

// Registry names, stable across PRs (the exporter schema references them).
const char* name(Counter c);
const char* name(Gauge g);
const char* name(Timer t);

struct TimerStat {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;

  void record(std::uint64_t ns) {
    ++count;
    total_ns += ns;
    if (ns > max_ns) max_ns = ns;
  }
  bool operator==(const TimerStat&) const = default;
};

// One trial's (or one merged aggregate's) metrics.
struct RunMetrics {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<std::uint64_t, kNumGauges> gauges{};
  std::array<TimerStat, kNumTimers> timers{};

  std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  std::uint64_t gauge(Gauge g) const {
    return gauges[static_cast<std::size_t>(g)];
  }
  const TimerStat& timer(Timer t) const {
    return timers[static_cast<std::size_t>(t)];
  }

  void add(Counter c, std::uint64_t delta = 1) {
    counters[static_cast<std::size_t>(c)] += delta;
  }
  void gauge_max(Gauge g, std::uint64_t value) {
    auto& slot = gauges[static_cast<std::size_t>(g)];
    if (value > slot) slot = value;
  }

  // Deterministic merge: counters add, gauges max, timers add/max. Used by
  // the trial runner in trial-index order.
  void merge(const RunMetrics& other);

  bool empty() const;

  // Equality on the deterministic part only (counters + gauges); timers are
  // wall-clock and never comparable across runs.
  bool deterministic_equal(const RunMetrics& other) const {
    return counters == other.counters && gauges == other.gauges;
  }

  bool operator==(const RunMetrics&) const = default;

  // Named snapshot: {"counters": {...}, "gauges": {...}, "timers": {...}}.
  // Zero-valued entries are omitted so reports stay small; timers can be
  // excluded entirely (e.g. when diffing runs for determinism).
  JsonValue to_json(bool include_timers = true) const;
};

#ifndef DAWN_OBS_DISABLED

namespace detail {
// The current thread's sink; null = disabled (the default).
inline thread_local RunMetrics* t_sink = nullptr;
}  // namespace detail

inline RunMetrics* sink() { return detail::t_sink; }
inline bool enabled() { return detail::t_sink != nullptr; }

// RAII sink installation; nests (the previous sink is restored, and callers
// that want outer scopes to see inner activity merge explicitly).
class MetricsScope {
 public:
  explicit MetricsScope(RunMetrics& m) : prev_(detail::t_sink) {
    detail::t_sink = &m;
  }
  ~MetricsScope() { detail::t_sink = prev_; }
  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

 private:
  RunMetrics* prev_;
};

inline void count(Counter c, std::uint64_t delta = 1) {
  if (RunMetrics* m = detail::t_sink) m->add(c, delta);
}

inline void gauge_max(Gauge g, std::uint64_t value) {
  if (RunMetrics* m = detail::t_sink) m->gauge_max(g, value);
}

// RAII stage timer: reads the clock only when a sink is installed.
class Stopwatch {
 public:
  explicit Stopwatch(Timer t) : sink_(detail::t_sink), timer_(t) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~Stopwatch() {
    if (sink_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    sink_->timers[static_cast<std::size_t>(timer_)].record(
        static_cast<std::uint64_t>(ns));
  }
  Stopwatch(const Stopwatch&) = delete;
  Stopwatch& operator=(const Stopwatch&) = delete;

 private:
  RunMetrics* sink_;
  Timer timer_;
  std::chrono::steady_clock::time_point start_;
};

#else  // DAWN_OBS_DISABLED: the whole layer compiles to nothing.

inline RunMetrics* sink() { return nullptr; }
inline bool enabled() { return false; }

class MetricsScope {
 public:
  explicit MetricsScope(RunMetrics&) {}
};

inline void count(Counter, std::uint64_t = 1) {}
inline void gauge_max(Gauge, std::uint64_t) {}

class Stopwatch {
 public:
  explicit Stopwatch(Timer) {}
};

#endif  // DAWN_OBS_DISABLED

}  // namespace dawn::obs
