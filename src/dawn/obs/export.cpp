#include "dawn/obs/export.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

#include "dawn/util/simd.hpp"

namespace dawn::obs {

namespace {

// The machine tier a report was produced on: without this, a throughput
// regression across PRs is indistinguishable from a slower CI box.
JsonValue host_object() {
  JsonValue host = JsonValue::object();
  host.set("cores", JsonValue(static_cast<std::uint64_t>(
                        std::thread::hardware_concurrency())));
  host.set("simd", JsonValue(simd_tier_name(simd_tier())));
#ifdef DAWN_OBS_DISABLED
  host.set("obs_disabled", JsonValue(true));
#else
  host.set("obs_disabled", JsonValue(false));
#endif
  return host;
}

}  // namespace

BenchReport::BenchReport(std::string_view bench_name, bool smoke)
    : name_(bench_name) {
  doc_ = JsonValue::object();
  doc_.set("schema_version", JsonValue(kBenchSchemaVersion));
  doc_.set("schema_minor", JsonValue(kBenchSchemaMinorVersion));
  doc_.set("bench", JsonValue(name_));
  doc_.set("smoke", JsonValue(smoke));
  doc_.set("host", host_object());
  doc_.set("meta", JsonValue::object());
  doc_.set("results", JsonValue::array());
}

void BenchReport::meta(const std::string& key, JsonValue value) {
  doc_.get("meta")->set(key, std::move(value));
}

void BenchReport::telemetry(const std::string& key, JsonValue value) {
  JsonValue* section = doc_.get("telemetry");
  if (section == nullptr) {
    doc_.set("telemetry", JsonValue::object());
    section = doc_.get("telemetry");
  }
  section->set(key, std::move(value));
}

void BenchReport::add_ledger(const MemoryLedger& ledger,
                             std::string_view prefix) {
  const std::string p(prefix);
  for (std::size_t i = 0; i < kNumMemoryAccounts; ++i) {
    if (ledger.bytes[i] != 0) {
      telemetry(p + name(static_cast<MemoryAccount>(i)),
                JsonValue(ledger.bytes[i]));
    }
  }
  telemetry(p + "total_bytes", JsonValue(ledger.total()));
}

JsonValue& BenchReport::add_row() {
  JsonValue* results = doc_.get("results");
  results->push_back(JsonValue::object());
  return results->at(results->size() - 1);
}

void BenchReport::add_metrics(JsonValue& row, const RunMetrics& metrics,
                              std::string_view prefix) {
  // Rows are flat, so the nested to_json() shape is flattened into prefixed
  // scalar columns; zero entries are omitted, matching to_json().
  const std::string p(prefix);
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (metrics.counters[i] != 0) {
      row.set(p + name(static_cast<Counter>(i)), metrics.counters[i]);
    }
  }
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    if (metrics.gauges[i] != 0) {
      row.set(p + name(static_cast<Gauge>(i)), metrics.gauges[i]);
    }
  }
  for (std::size_t i = 0; i < kNumTimers; ++i) {
    const TimerStat& t = metrics.timers[i];
    if (t.count == 0) continue;
    const std::string col = p + name(static_cast<Timer>(i));
    row.set(col + ".count", t.count);
    row.set(col + ".total_ns", t.total_ns);
    row.set(col + ".max_ns", t.max_ns);
  }
}

void BenchReport::add_census(JsonValue& row, const Census& census,
                             std::string_view prefix) {
  const std::string p(prefix);
  row.set(p + "distinct_states",
          JsonValue(static_cast<std::uint64_t>(census.distinct_states)));
  row.set(p + "distinct_configs",
          JsonValue(static_cast<std::uint64_t>(census.distinct_configs)));
  row.set(p + "steps", JsonValue(census.steps));
  row.set(p + "total_interned",
          JsonValue(static_cast<std::uint64_t>(census.total_interned())));
  for (std::size_t i = 0; i < census.layers.size(); ++i) {
    const std::string col = p + "layer" + std::to_string(i) + ".";
    row.set(col + "name", JsonValue(census.layers[i].layer));
    row.set(col + "states",
            JsonValue(static_cast<std::uint64_t>(
                census.layers[i].interned_states)));
  }
}

std::string BenchReport::write(const std::string& dir,
                               std::string_view file_stem) const {
  const std::string stem(file_stem.empty() ? std::string_view(name_)
                                           : file_stem);
  const std::string path = dir + "/BENCH_" + stem + ".json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "BenchReport: cannot open %s\n", path.c_str());
    return "";
  }
  out << dump(2) << "\n";
  if (!out) {
    std::fprintf(stderr, "BenchReport: write failed: %s\n", path.c_str());
    return "";
  }
  return path;
}

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

bool is_flat_scalar_object(const JsonValue& obj, const char* what,
                           std::string* error) {
  for (const auto& [key, value] : obj.members()) {
    if (!value.is_scalar() && !value.is_null()) {
      return fail(error, std::string(what) + " value for key '" + key +
                             "' is not a scalar");
    }
  }
  return true;
}

}  // namespace

bool BenchReport::validate(const JsonValue& doc, std::string* error) {
  if (doc.kind() != JsonValue::Kind::Object) {
    return fail(error, "document is not an object");
  }
  const JsonValue* version = doc.get("schema_version");
  if (!version || version->kind() != JsonValue::Kind::Int) {
    return fail(error, "missing integer schema_version");
  }
  if (version->as_int() != kBenchSchemaVersion) {
    return fail(error, "unsupported schema_version " +
                           std::to_string(version->as_int()));
  }
  const JsonValue* bench = doc.get("bench");
  if (!bench || bench->kind() != JsonValue::Kind::String ||
      bench->as_string().empty()) {
    return fail(error, "missing non-empty string 'bench'");
  }
  const JsonValue* smoke = doc.get("smoke");
  if (!smoke || smoke->kind() != JsonValue::Kind::Bool) {
    return fail(error, "missing boolean 'smoke'");
  }
  // Minor-revision fields are optional (minor 0 files predate them) but
  // must be well-formed when present.
  if (const JsonValue* minor = doc.get("schema_minor")) {
    if (minor->kind() != JsonValue::Kind::Int || minor->as_int() < 0) {
      return fail(error, "schema_minor is not a non-negative integer");
    }
  }
  if (const JsonValue* host = doc.get("host")) {
    if (host->kind() != JsonValue::Kind::Object) {
      return fail(error, "'host' is not an object");
    }
    if (!is_flat_scalar_object(*host, "host", error)) return false;
  }
  // Minor 2: an optional flat-scalar telemetry section.
  if (const JsonValue* telemetry = doc.get("telemetry")) {
    if (telemetry->kind() != JsonValue::Kind::Object) {
      return fail(error, "'telemetry' is not an object");
    }
    if (!is_flat_scalar_object(*telemetry, "telemetry", error)) return false;
  }
  const JsonValue* meta = doc.get("meta");
  if (!meta || meta->kind() != JsonValue::Kind::Object) {
    return fail(error, "missing object 'meta'");
  }
  if (!is_flat_scalar_object(*meta, "meta", error)) return false;
  const JsonValue* results = doc.get("results");
  if (!results || results->kind() != JsonValue::Kind::Array) {
    return fail(error, "missing array 'results'");
  }
  for (std::size_t i = 0; i < results->size(); ++i) {
    const JsonValue& row = results->at(i);
    if (row.kind() != JsonValue::Kind::Object) {
      return fail(error, "results[" + std::to_string(i) + "] is not an object");
    }
    if (!is_flat_scalar_object(
            row, ("results[" + std::to_string(i) + "]").c_str(), error)) {
      return false;
    }
  }
  return true;
}

void record_census(const Census& census, RunMetrics& metrics) {
  metrics.gauge_max(Gauge::CensusDistinctStates,
                    static_cast<std::uint64_t>(census.distinct_states));
  metrics.gauge_max(Gauge::CensusDistinctConfigs,
                    static_cast<std::uint64_t>(census.distinct_configs));
  metrics.gauge_max(Gauge::InternerPeakStates,
                    static_cast<std::uint64_t>(census.total_interned()));
}

bool smoke_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  return false;
}

}  // namespace dawn::obs
