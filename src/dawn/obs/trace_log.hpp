// Structured run tracing: a bounded JSONL event stream.
//
// RunRecorder (trace/recorder.hpp) captures full configurations for
// human-readable transcripts; that is the right tool for small runs but the
// wrong one for observability — configs are O(n) per step and the output is
// not machine-diffable. TraceLog records *events*: small, schema'd JSON
// objects, one per line when serialised (JSONL). A trace is
//
//   * bounded — at most `max_events` events are kept; later events are
//     dropped and counted (Counter::TraceEventsDropped), so tracing a 10^6
//     step run cannot exhaust memory;
//   * replayable — step events carry the full selection, so a run can be
//     re-executed deterministically from its trace without the scheduler or
//     its seed;
//   * diffable — first_divergence() finds the first event where two traces
//     disagree, which turns "two engines behaved differently" into a
//     pinpointed step index.
//
// Event schema (docs/OBSERVABILITY.md has the full reference):
//   {"type":"run_start","nodes":N,"engine":"incremental"}
//   {"type":"step","t":T,"sel":[ids],"changed":K}
//   {"type":"consensus","t":T,"verdict":"accept"|"reject"}
//   {"type":"consensus_lost","t":T}
//   {"type":"run_end","t":T,"converged":B,"verdict":...}
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dawn/automata/config.hpp"
#include "dawn/obs/json.hpp"

namespace dawn::obs {

class TraceLog {
 public:
  static constexpr std::size_t kDefaultMaxEvents = 1 << 16;

  explicit TraceLog(std::size_t max_events = kDefaultMaxEvents)
      : max_events_(max_events) {}

  // Appends an event; returns false (and counts a drop) once full.
  bool append(JsonValue event);

  // Typed emitters used by the simulation loop.
  void run_start(std::size_t nodes, std::string_view engine);
  void step(std::uint64_t t, const Selection& selection, std::size_t changed);
  void consensus(std::uint64_t t, std::string_view verdict);
  void consensus_lost(std::uint64_t t);
  void run_end(std::uint64_t t, bool converged, std::string_view verdict);

  std::size_t size() const { return events_.size(); }
  std::size_t dropped() const { return dropped_; }
  bool truncated() const { return dropped_ > 0; }
  const std::vector<JsonValue>& events() const { return events_; }

  // One `dump(0)` per line; if events were dropped, a final
  // {"type":"truncated","dropped":K} line records the loss.
  std::string to_jsonl() const;
  bool write_file(const std::string& path, std::string* error = nullptr) const;

  // Parses a JSONL document back into events (inverse of to_jsonl).
  static std::optional<std::vector<JsonValue>> parse_jsonl(
      std::string_view text, std::string* error = nullptr);

  // Index of the first event where the two streams differ, or -1 if one is
  // a prefix of the other (compare sizes to distinguish equal from prefix).
  static std::ptrdiff_t first_divergence(const std::vector<JsonValue>& a,
                                         const std::vector<JsonValue>& b);

 private:
  std::size_t max_events_;
  std::size_t dropped_ = 0;
  std::vector<JsonValue> events_;
};

}  // namespace dawn::obs
