// Unified experiment exporter: one schema for every BENCH_*.json.
//
// Before this layer each bench hand-rolled its own JSON writer, so the
// reports drifted: different key names, no version field, no way to validate
// them mechanically. BenchReport is the single writer; tools/bench_schema_check
// is the matching validator, and CI runs every bench in --smoke mode and
// checks the emitted files against validate().
//
// Schema (version 1, minor 2):
//   {
//     "schema_version": 1,
//     "schema_minor": 2,            // additive revisions within version 1
//     "bench": "<name>",            // e.g. "engine_throughput"
//     "smoke": false,               // true when produced by a --smoke run
//     "host": { ... },              // flat scalars: cores, simd tier, obs
//     "meta": { ... },              // flat scalars: headline numbers, config
//     "telemetry": { ... },         // optional flat scalars: spans, ledger
//     "results": [ {..row..}, ... ] // flat scalar row objects
//   }
//
// Minor revisions only ever ADD optional fields, so validate() accepts
// documents written by any minor within the same major (minor 0 files have
// neither "schema_minor" nor "host").
//
// Rows are flat (scalar values only) so the reports stay greppable and
// trivially loadable into a dataframe. RunMetrics and Census snapshots are
// flattened into prefixed columns ("metrics.sim.steps", "census.layer0.name").
#pragma once

#include <string>
#include <string_view>

#include "dawn/obs/json.hpp"
#include "dawn/obs/memory_ledger.hpp"
#include "dawn/obs/metrics.hpp"
#include "dawn/trace/census.hpp"

namespace dawn::obs {

inline constexpr int kBenchSchemaVersion = 1;
// Minor 1: added the "host" object (cores / simd / obs_disabled) so perf
// reports record the machine tier that produced them.
// Minor 2: added the optional flat-scalar "telemetry" object (span counts,
// heartbeat counts, memory-ledger accounts — see telemetry()/add_ledger()).
inline constexpr int kBenchSchemaMinorVersion = 2;

class BenchReport {
 public:
  explicit BenchReport(std::string_view bench_name, bool smoke = false);

  // Flat scalar metadata (headline numbers, configuration).
  void meta(const std::string& key, JsonValue value);

  // Flat scalar telemetry (schema minor 2): span/heartbeat counts, overhead
  // ratios. The "telemetry" object is created on first use and stays absent
  // from reports that never call this.
  void telemetry(const std::string& key, JsonValue value);

  // Flattens a memory ledger into the telemetry object under a prefix
  // ("mem.vector_store_bytes", ...); zero accounts are omitted, the total
  // always lands in "<prefix>total_bytes".
  void add_ledger(const MemoryLedger& ledger, std::string_view prefix = "mem.");

  // Starts a new result row and returns it; add scalar columns with set().
  JsonValue& add_row();

  // Flattens into the current (last) row under a prefix.
  void add_metrics(JsonValue& row, const RunMetrics& metrics,
                   std::string_view prefix = "metrics.");
  void add_census(JsonValue& row, const Census& census,
                  std::string_view prefix = "census.");

  const JsonValue& json() const { return doc_; }
  std::string dump(int indent = 2) const { return doc_.dump(indent); }

  // Writes "<dir>/BENCH_<stem>.json" (stem defaults to the bench name);
  // returns the path written, or "" on failure (error message to stderr).
  // The stem override exists for reports whose historical file name is
  // shorter than the bench name (BENCH_engine.json vs "engine_throughput").
  std::string write(const std::string& dir = ".",
                    std::string_view file_stem = {}) const;

  // Validates a parsed document against the version-1 schema. Returns true
  // if valid; otherwise fills `error` with the first violation.
  static bool validate(const JsonValue& doc, std::string* error = nullptr);

 private:
  std::string name_;
  JsonValue doc_;
};

// Records a census into a metrics sink as gauges (distinct states/configs
// and the total interned-state footprint across layers).
void record_census(const Census& census, RunMetrics& metrics);

// Parses `--smoke` from argv; benches call this to decide their sizing.
bool smoke_mode(int argc, char** argv);

}  // namespace dawn::obs
