#include "dawn/obs/metrics.hpp"

#include "dawn/obs/json.hpp"

namespace dawn::obs {

const char* name(Counter c) {
  switch (c) {
    case Counter::SimRuns: return "sim.runs";
    case Counter::SimSteps: return "sim.steps";
    case Counter::SimActivations: return "sim.activations";
    case Counter::SimCommits: return "engine.commits";
    case Counter::SimConverged: return "sim.converged";
    case Counter::ConsensusEstablished: return "consensus.established";
    case Counter::ConsensusLost: return "consensus.lost";
    case Counter::SchedGreedyWasted: return "sched.greedy.wasted";
    case Counter::SchedGreedyForcedSweeps: return "sched.greedy.forced_sweeps";
    case Counter::SchedPermutationShuffles: return "sched.permutation.shuffles";
    case Counter::InternerInserts: return "interner.inserts";
    case Counter::OverlaySteps: return "overlay.neighbourhood_steps";
    case Counter::OverlayBroadcasts: return "overlay.broadcasts";
    case Counter::AbsenceSuperSteps: return "absence.super_steps";
    case Counter::AbsenceHangs: return "absence.hangs";
    case Counter::PopulationSteps: return "population.steps";
    case Counter::TraceEventsDropped: return "trace.events_dropped";
    case Counter::ExploreConfigs: return "explore.configs";
    case Counter::ExploreEdges: return "explore.edges";
    case Counter::ExploreLevels: return "explore.levels";
    case Counter::ExploreSteals: return "explore.steals";
    case Counter::ExploreSpillEvents: return "explore.spill.events";
    case Counter::ExploreSpillBytes: return "explore.spill.bytes";
    case Counter::NetConnections: return "net.connections";
    case Counter::NetRequests: return "net.requests";
    case Counter::NetErrors: return "net.errors";
    case Counter::NetCacheHits: return "net.cache_hits";
    case Counter::NetDistSessions: return "net.dist.sessions";
    case Counter::NetDistPushes: return "net.dist.pushes";
    case Counter::NetDistPushedConfigs: return "net.dist.pushed_configs";
    case Counter::NetDistBarriers: return "net.dist.barriers";
    case Counter::kCount: break;
  }
  return "counter.unknown";
}

const char* name(Gauge g) {
  switch (g) {
    case Gauge::MaxSelectionSize: return "sim.max_selection_size";
    case Gauge::CensusDistinctStates: return "census.distinct_states";
    case Gauge::CensusDistinctConfigs: return "census.distinct_configs";
    case Gauge::InternerPeakStates: return "interner.peak_states";
    case Gauge::ExploreShardPeak: return "explore.shard_peak";
    case Gauge::ExploreFrontierPeak: return "explore.frontier_peak";
    case Gauge::ExploreThreads: return "explore.threads";
    case Gauge::ExploreStoreBytes: return "explore.store_bytes";
    case Gauge::ExploreResidentBytes: return "explore.resident_bytes";
    case Gauge::NetInflightPeak: return "net.inflight_peak";
    case Gauge::kCount: break;
  }
  return "gauge.unknown";
}

const char* name(Timer t) {
  switch (t) {
    case Timer::SimulateTotal: return "time.simulate";
    case Timer::AbsenceSuperStep: return "time.absence_super_step";
    case Timer::OverlayBroadcast: return "time.overlay_broadcast";
    case Timer::kCount: break;
  }
  return "timer.unknown";
}

void RunMetrics::merge(const RunMetrics& other) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    counters[i] += other.counters[i];
  }
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    if (other.gauges[i] > gauges[i]) gauges[i] = other.gauges[i];
  }
  for (std::size_t i = 0; i < kNumTimers; ++i) {
    timers[i].count += other.timers[i].count;
    timers[i].total_ns += other.timers[i].total_ns;
    if (other.timers[i].max_ns > timers[i].max_ns) {
      timers[i].max_ns = other.timers[i].max_ns;
    }
  }
}

bool RunMetrics::empty() const {
  for (const auto c : counters) {
    if (c != 0) return false;
  }
  for (const auto g : gauges) {
    if (g != 0) return false;
  }
  for (const auto& t : timers) {
    if (t.count != 0) return false;
  }
  return true;
}

JsonValue RunMetrics::to_json(bool include_timers) const {
  JsonValue out = JsonValue::object();
  JsonValue cs = JsonValue::object();
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (counters[i] != 0) {
      cs.set(name(static_cast<Counter>(i)), counters[i]);
    }
  }
  out.set("counters", std::move(cs));
  JsonValue gs = JsonValue::object();
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    if (gauges[i] != 0) {
      gs.set(name(static_cast<Gauge>(i)), gauges[i]);
    }
  }
  out.set("gauges", std::move(gs));
  if (include_timers) {
    JsonValue ts = JsonValue::object();
    for (std::size_t i = 0; i < kNumTimers; ++i) {
      const TimerStat& t = timers[i];
      if (t.count == 0) continue;
      JsonValue entry = JsonValue::object();
      entry.set("count", t.count);
      entry.set("total_ns", t.total_ns);
      entry.set("max_ns", t.max_ns);
      ts.set(name(static_cast<Timer>(i)), std::move(entry));
    }
    out.set("timers", std::move(ts));
  }
  return out;
}

}  // namespace dawn::obs
