#include "dawn/obs/memory_ledger.hpp"

#include "dawn/obs/json.hpp"

namespace dawn::obs {

const char* name(MemoryAccount a) {
  switch (a) {
    case MemoryAccount::VectorStoreBytes: return "vector_store_bytes";
    case MemoryAccount::PackedStoreBytes: return "packed_store_bytes";
    case MemoryAccount::InternerBytes: return "interner_bytes";
    case MemoryAccount::FrontierBytes: return "frontier_bytes";
    case MemoryAccount::EdgeBytes: return "edge_bytes";
    case MemoryAccount::TrialBlockBytes: return "trial_block_bytes";
    case MemoryAccount::TieredResidentBytes: return "tiered_resident_bytes";
    case MemoryAccount::SpillArenaBytes: return "spill_arena_bytes";
    case MemoryAccount::SpillFrontierBytes: return "spill_frontier_bytes";
    case MemoryAccount::SpillEdgeBytes: return "spill_edge_bytes";
    case MemoryAccount::kCount: break;
  }
  return "?";
}

JsonValue MemoryLedger::to_json() const {
  JsonValue out = JsonValue::object();
  for (std::size_t i = 0; i < kNumMemoryAccounts; ++i) {
    if (bytes[i] != 0) {
      out.set(name(static_cast<MemoryAccount>(i)), JsonValue(bytes[i]));
    }
  }
  out.set("total_bytes", JsonValue(total()));
  return out;
}

}  // namespace dawn::obs
