// Phase spans: nestable wall-clock intervals over the engines' phases.
//
// PR 2's counters say *how much* work a run did; spans say *when* and *on
// which thread*. A SpanLog owns per-thread bounded buffers (the same
// merge-deterministically-after-the-joins discipline as RunMetrics), and a
// SpanScope is the RAII recording point:
//
//   obs::SpanLog log;
//   {
//     obs::SpanScope span(&log, obs::Phase::ExploreExpand, frontier.size());
//     ... one BFS level expands ...
//   }                       // end timestamp taken here
//   log.merged();           // deterministic order, after recording threads join
//   dump_chrome_trace(log, "trace.json");   // Perfetto-loadable
//
// Design constraints (docs/OBSERVABILITY.md):
//
//  * Zero cost when no log is installed: a SpanScope against a null log is
//    a branch, and the whole layer is inert under -DDAWN_OBS_DISABLED
//    (SpanScope becomes an empty class; nothing reads the clock).
//  * No allocation on the hot path: each thread's buffer is reserved up
//    front and spans beyond capacity are counted as dropped, never grown.
//  * Timestamps are wall-clock nanoseconds relative to the log's epoch and
//    are OUTSIDE the determinism contract (like RunMetrics timers); only
//    the merge *order* is deterministic.
//
// Threading: SpanScope may run on any thread; a thread registers itself
// with the log on first use (one mutex acquisition, then cached in a
// thread_local). merged(), chrome_trace_json() and dump_chrome_trace() are
// single-threaded accounting — call them after the recording threads have
// joined.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace dawn::obs {

class JsonValue;

// The instrumented engine phases. Names are stable across PRs (the Chrome
// trace and the heartbeat records reference them).
enum class Phase : std::uint8_t {
  DecideTotal,     // one decide() facade call
  ExploreExpand,   // one BFS level of the frontier-parallel exploration
  ExploreMerge,    // post-exploration buffer merge + dense remap
  ExploreSccTrim,  // SCC pass: the in/out-degree peel
  ExploreSccFb,    // SCC pass: forward-backward partitioning workers
  ExploreSpill,    // tiered store: one level-boundary spill pass
  Canonicalize,    // one symmetry-canonicalised expansion
  TrialsBlock,     // one SoA batched trial block
  SimulateRun,     // one simulate() run
  FuzzCase,        // one differential fuzz case (all selected pairs)
  NetRequest,      // one dawnd Decide request executed by a server worker
  ExploreDistExchange,  // one distributed level's frontier exchange + barrier
  kCount,
};

inline constexpr std::size_t kNumPhases = static_cast<std::size_t>(Phase::kCount);

const char* name(Phase p);

struct SpanRecord {
  Phase phase = Phase::DecideTotal;
  std::uint32_t tid = 0;        // log-local thread id (registration order)
  std::uint64_t begin_ns = 0;   // relative to the log's epoch
  std::uint64_t end_ns = 0;
  std::uint64_t items = 0;      // phase-specific payload (configs, lanes, ...)

  bool operator==(const SpanRecord&) const = default;
};

class SpanLog {
 public:
  static constexpr std::size_t kDefaultCapacityPerThread = 1 << 16;

  explicit SpanLog(std::size_t capacity_per_thread = kDefaultCapacityPerThread);
  SpanLog(const SpanLog&) = delete;
  SpanLog& operator=(const SpanLog&) = delete;

  // Nanoseconds since this log's construction.
  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  // One recording thread's buffer. Bounded: append() past capacity counts a
  // drop instead of growing (no allocation on the hot path).
  struct ThreadSink {
    std::uint32_t tid = 0;
    std::vector<SpanRecord> records;
    std::uint64_t dropped = 0;
    std::size_t capacity = 0;

    bool full() const { return records.size() >= capacity; }
  };

  // The calling thread's sink, registering it on first use. The result is
  // cached in a thread_local keyed by the log's identity, so the steady
  // state is one pointer compare.
  ThreadSink* current_sink();

  // -- Single-threaded accounting; call after recording threads joined. --

  // All records, in deterministic order: (begin_ns, end_ns, tid, phase,
  // items). Timestamps are wall-clock so the *contents* differ run to run,
  // but the ordering rule never depends on which thread merged first.
  std::vector<SpanRecord> merged() const;

  // Per-thread buffers in recording order (a span is appended when it
  // *ends*, so each buffer is a post-order traversal of that thread's span
  // nesting forest — the Chrome exporter rebuilds exact B/E nesting from
  // this even when coarse clocks produce tied timestamps).
  std::vector<std::vector<SpanRecord>> per_thread() const;

  std::size_t size() const;            // records currently held
  std::uint64_t dropped() const;       // spans beyond capacity, all threads
  std::size_t num_threads() const;     // threads that registered

  std::size_t capacity_per_thread() const { return capacity_; }

 private:
  friend class SpanScope;

  mutable std::mutex mu_;
  std::deque<ThreadSink> sinks_;  // deque: sink pointers stay stable
  std::size_t capacity_;
  std::chrono::steady_clock::time_point epoch_;
  std::uint64_t log_id_;  // process-unique, for the thread_local sink cache
};

// Chrome trace-event JSON for the log's current contents:
// {"traceEvents": [...]} with matched B/E duration pairs (ts microseconds,
// monotonic per tid) plus process/thread-name metadata events. Loads in
// chrome://tracing and Perfetto; tools/dawn_trace_check validates the
// invariants mechanically.
JsonValue chrome_trace_json(const SpanLog& log);

// Writes chrome_trace_json() to `path`. Returns false (and fills `error`)
// on I/O failure.
bool dump_chrome_trace(const SpanLog& log, const std::string& path,
                       std::string* error = nullptr);

#ifndef DAWN_OBS_DISABLED

namespace detail {
// The current thread's ambient span log; null = disabled (the default).
// Installed via obs::TelemetryScope (telemetry.hpp).
inline thread_local SpanLog* t_spans = nullptr;
}  // namespace detail

inline SpanLog* spans() { return detail::t_spans; }

// RAII span: records [construction, destruction) into the given log (or the
// ambient log). Null log = fully inert; a full sink costs one drop count and
// never reads the clock.
class SpanScope {
 public:
  explicit SpanScope(Phase phase, std::uint64_t items = 0)
      : SpanScope(detail::t_spans, phase, items) {}

  SpanScope(SpanLog* log, Phase phase, std::uint64_t items = 0)
      : phase_(phase), items_(items) {
    if (log == nullptr) return;
    SpanLog::ThreadSink* sink = log->current_sink();
    if (sink->full()) {
      ++sink->dropped;
      return;
    }
    log_ = log;
    sink_ = sink;
    begin_ns_ = log->now_ns();
  }

  ~SpanScope() {
    if (sink_ == nullptr) return;
    // Capacity was checked at construction; a nested span cannot have filled
    // the sink past capacity in between because it also checked. Still guard:
    // drop rather than grow.
    if (sink_->full()) {
      ++sink_->dropped;
      return;
    }
    sink_->records.push_back(
        {phase_, sink_->tid, begin_ns_, log_->now_ns(), items_});
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  void add_items(std::uint64_t n) { items_ += n; }

 private:
  SpanLog* log_ = nullptr;
  SpanLog::ThreadSink* sink_ = nullptr;
  Phase phase_;
  std::uint64_t begin_ns_ = 0;
  std::uint64_t items_;
};

#else  // DAWN_OBS_DISABLED: spans compile to nothing.

inline SpanLog* spans() { return nullptr; }

class SpanScope {
 public:
  explicit SpanScope(Phase, std::uint64_t = 0) {}
  SpanScope(SpanLog*, Phase, std::uint64_t = 0) {}
  void add_items(std::uint64_t) {}
};

#endif  // DAWN_OBS_DISABLED

}  // namespace dawn::obs
