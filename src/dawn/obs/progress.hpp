// Live progress: lock-free counters the engines bump, and a sampler thread
// that turns them into heartbeat records.
//
// A long decide() used to be a black box until it returned. ExploreProgress
// is a bag of relaxed atomics — configs interned, BFS level, frontier size,
// deadline remaining, per-shard occupancy — updated by the exploration
// workers at level boundaries (plus one relaxed increment per fresh
// configuration for the shard histogram). ProgressReporter is a sampler
// thread that snapshots those atomics every interval_ms and emits one
// JSONL heartbeat record (and an optional stderr one-liner) per tick.
//
// Hard guarantee — heartbeats never perturb decisions:
//  * the sampler only LOADS atomics; it never touches engine state, takes
//    no engine lock, and the engines never wait on it;
//  * the engine-side hooks are a null-check plus relaxed stores, executed
//    identically whether a sampler is attached or not (the hooks fire when
//    an ExploreProgress is installed, the sampler merely reads it);
//  * everything a DecisionReport contains is computed independently of this
//    header, so reports are bit-identical with heartbeats on or off — at
//    any thread count (pinned by tests/test_telemetry.cpp);
//  * off by default; -DDAWN_OBS_DISABLED compiles the hooks out and turns
//    start() into a no-op.
//
// Heartbeat record schema (one JSON object per line):
//   {"type": "heartbeat", "seq": k, "t_ms": <since start()>,
//    "configs": n, "configs_per_sec": r, "edges": e, "level": l,
//    "frontier": f, "deadline_ms_remaining": d,   // -1 = no deadline
//    "shard_nonzero": z, "shard_min": a, "shard_max": b,
//    "shards": [64 occupancies]}
// Timestamps and rates are wall-clock: OUTSIDE the determinism contract.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dawn/obs/json.hpp"

namespace dawn::obs {

// Counters for one exploration (or any long-running engine phase). All
// loads/stores are relaxed: a heartbeat is a statistical snapshot, not a
// synchronisation point.
struct ExploreProgress {
  // Matches the stores' shard count (ShardedConfigStore::kNumShards).
  static constexpr std::size_t kNumShards = 64;

  std::atomic<std::uint64_t> configs{0};
  std::atomic<std::uint64_t> edges{0};
  std::atomic<std::uint64_t> level{0};
  std::atomic<std::uint64_t> frontier{0};
  // Milliseconds until the budget deadline; -1 = no deadline set.
  std::atomic<std::int64_t> deadline_ms_remaining{-1};
  // Fresh-intern counts per store shard (gid & 63), bumped by workers.
  std::array<std::atomic<std::uint64_t>, kNumShards> shard_sizes{};

  void reset() {
    configs.store(0, std::memory_order_relaxed);
    edges.store(0, std::memory_order_relaxed);
    level.store(0, std::memory_order_relaxed);
    frontier.store(0, std::memory_order_relaxed);
    deadline_ms_remaining.store(-1, std::memory_order_relaxed);
    for (auto& s : shard_sizes) s.store(0, std::memory_order_relaxed);
  }
};

// The sampler. Construct it over an ExploreProgress, start() it, run the
// workload, stop() it. Records accumulate in memory (records()) and, when
// jsonl_path is set, stream to that file one object per line.
class ProgressReporter {
 public:
  struct Options {
    std::uint64_t interval_ms = 500;
    bool stderr_line = false;    // human one-liner per tick on stderr
    std::string jsonl_path;      // empty = in-memory records only
  };

  ProgressReporter(const ExploreProgress& progress, Options options);
  ~ProgressReporter();  // stops if still running

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  // Launches the sampler thread. No-op if already running, and a no-op
  // under -DDAWN_OBS_DISABLED (the engines emit nothing to sample).
  void start();

  // Joins the sampler and takes one final snapshot, so a completed run
  // always has at least one heartbeat even if it beat the first interval.
  void stop();

  bool running() const { return running_; }

  // Valid after stop() (the sampler appends concurrently while running).
  const std::vector<JsonValue>& records() const { return records_; }

  // True if the JSONL stream hit an I/O error.
  bool write_failed() const { return write_failed_; }

 private:
  void sampler_main();
  void sample();

  const ExploreProgress& progress_;
  Options options_;

  std::thread sampler_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;

  std::chrono::steady_clock::time_point start_time_;
  std::uint64_t seq_ = 0;
  std::uint64_t last_configs_ = 0;
  std::chrono::steady_clock::time_point last_sample_time_;

  std::vector<JsonValue> records_;
  std::ofstream jsonl_;
  bool write_failed_ = false;
};

#ifndef DAWN_OBS_DISABLED

namespace detail {
// The current thread's ambient progress sink; null = disabled (the
// default). Installed via obs::TelemetryScope (telemetry.hpp).
inline thread_local ExploreProgress* t_progress = nullptr;
}  // namespace detail

inline ExploreProgress* progress() { return detail::t_progress; }

#else

inline ExploreProgress* progress() { return nullptr; }

#endif  // DAWN_OBS_DISABLED

}  // namespace dawn::obs
