#include "dawn/obs/trace_log.hpp"

#include <fstream>

#include "dawn/obs/metrics.hpp"

namespace dawn::obs {

bool TraceLog::append(JsonValue event) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    count(Counter::TraceEventsDropped);
    return false;
  }
  events_.push_back(std::move(event));
  return true;
}

void TraceLog::run_start(std::size_t nodes, std::string_view engine) {
  JsonValue e = JsonValue::object();
  e.set("type", JsonValue("run_start"));
  e.set("nodes", JsonValue(static_cast<std::uint64_t>(nodes)));
  e.set("engine", JsonValue(engine));
  append(std::move(e));
}

void TraceLog::step(std::uint64_t t, const Selection& selection,
                    std::size_t changed) {
  JsonValue e = JsonValue::object();
  e.set("type", JsonValue("step"));
  e.set("t", JsonValue(t));
  JsonValue sel = JsonValue::array();
  for (NodeId v : selection) sel.push_back(JsonValue(static_cast<std::int64_t>(v)));
  e.set("sel", std::move(sel));
  e.set("changed", JsonValue(static_cast<std::uint64_t>(changed)));
  append(std::move(e));
}

void TraceLog::consensus(std::uint64_t t, std::string_view verdict) {
  JsonValue e = JsonValue::object();
  e.set("type", JsonValue("consensus"));
  e.set("t", JsonValue(t));
  e.set("verdict", JsonValue(verdict));
  append(std::move(e));
}

void TraceLog::consensus_lost(std::uint64_t t) {
  JsonValue e = JsonValue::object();
  e.set("type", JsonValue("consensus_lost"));
  e.set("t", JsonValue(t));
  append(std::move(e));
}

void TraceLog::run_end(std::uint64_t t, bool converged,
                       std::string_view verdict) {
  // The terminal event must not be dropped — without it a truncated trace is
  // indistinguishable from a crashed run. Evict the newest step event if
  // needed.
  JsonValue e = JsonValue::object();
  e.set("type", JsonValue("run_end"));
  e.set("t", JsonValue(t));
  e.set("converged", JsonValue(converged));
  e.set("verdict", JsonValue(verdict));
  if (events_.size() >= max_events_ && !events_.empty()) {
    events_.pop_back();
    ++dropped_;
    count(Counter::TraceEventsDropped);
  }
  events_.push_back(std::move(e));
}

std::string TraceLog::to_jsonl() const {
  std::string out;
  for (const JsonValue& e : events_) {
    out += e.dump();
    out += '\n';
  }
  if (dropped_ > 0) {
    JsonValue marker = JsonValue::object();
    marker.set("type", JsonValue("truncated"));
    marker.set("dropped", JsonValue(static_cast<std::uint64_t>(dropped_)));
    out += marker.dump();
    out += '\n';
  }
  return out;
}

bool TraceLog::write_file(const std::string& path, std::string* error) const {
  std::ofstream out(path);
  if (!out) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  out << to_jsonl();
  if (!out) {
    if (error) *error = "write failed: " + path;
    return false;
  }
  return true;
}

std::optional<std::vector<JsonValue>> TraceLog::parse_jsonl(
    std::string_view text, std::string* error) {
  std::vector<JsonValue> events;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty()) continue;
    std::string line_error;
    auto value = JsonValue::parse(line, &line_error);
    if (!value) {
      if (error) {
        *error = "line " + std::to_string(line_no) + ": " + line_error;
      }
      return std::nullopt;
    }
    events.push_back(std::move(*value));
  }
  return events;
}

std::ptrdiff_t TraceLog::first_divergence(const std::vector<JsonValue>& a,
                                          const std::vector<JsonValue>& b) {
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (!(a[i] == b[i])) return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

}  // namespace dawn::obs
