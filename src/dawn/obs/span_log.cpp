#include "dawn/obs/span_log.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>

#include "dawn/obs/json.hpp"

namespace dawn::obs {

const char* name(Phase p) {
  switch (p) {
    case Phase::DecideTotal: return "decide";
    case Phase::ExploreExpand: return "explore.expand";
    case Phase::ExploreMerge: return "explore.merge";
    case Phase::ExploreSccTrim: return "explore.scc.trim";
    case Phase::ExploreSccFb: return "explore.scc.fb";
    case Phase::ExploreSpill: return "explore.spill";
    case Phase::Canonicalize: return "canonicalize";
    case Phase::TrialsBlock: return "trials.block";
    case Phase::SimulateRun: return "simulate.run";
    case Phase::FuzzCase: return "fuzz.case";
    case Phase::NetRequest: return "net.request";
    case Phase::ExploreDistExchange: return "explore.dist.exchange";
    case Phase::kCount: break;
  }
  return "?";
}

namespace {

std::uint64_t next_log_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

SpanLog::SpanLog(std::size_t capacity_per_thread)
    : capacity_(capacity_per_thread < 1 ? 1 : capacity_per_thread),
      epoch_(std::chrono::steady_clock::now()),
      log_id_(next_log_id()) {}

SpanLog::ThreadSink* SpanLog::current_sink() {
  // Keyed by the process-unique log id, not the address: a worker thread
  // outliving one log must not reuse a stale sink when a new log lands at
  // the same address.
  struct Cache {
    std::uint64_t log_id = 0;
    ThreadSink* sink = nullptr;
  };
  thread_local Cache cache;
  if (cache.log_id == log_id_) return cache.sink;
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.emplace_back();
  ThreadSink& sink = sinks_.back();
  sink.tid = static_cast<std::uint32_t>(sinks_.size() - 1);
  sink.capacity = capacity_;
  sink.records.reserve(capacity_);
  cache = {log_id_, &sink};
  return &sink;
}

std::vector<SpanRecord> SpanLog::merged() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const ThreadSink& sink : sinks_) {
      out.insert(out.end(), sink.records.begin(), sink.records.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.begin_ns != b.begin_ns) return a.begin_ns < b.begin_ns;
              if (a.end_ns != b.end_ns) return a.end_ns > b.end_ns;  // outer first
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.phase != b.phase) return a.phase < b.phase;
              return a.items < b.items;
            });
  return out;
}

std::vector<std::vector<SpanRecord>> SpanLog::per_thread() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::vector<SpanRecord>> out;
  out.reserve(sinks_.size());
  for (const ThreadSink& sink : sinks_) out.push_back(sink.records);
  return out;
}

std::size_t SpanLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const ThreadSink& sink : sinks_) total += sink.records.size();
  return total;
}

std::uint64_t SpanLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const ThreadSink& sink : sinks_) total += sink.dropped;
  return total;
}

std::size_t SpanLog::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sinks_.size();
}

namespace {

struct TraceEvent {
  std::uint64_t ts_ns = 0;
  bool begin = false;  // false = E, true = B
  std::uint32_t tid = 0;
  Phase phase = Phase::DecideTotal;
  std::uint64_t items = 0;
};

// One span plus the spans it directly encloses, rebuilt from the buffer's
// post-order: scanning in recording (end) order, a completed span whose
// begin is at or after the current span's begin is a child. This recovers
// the exact RAII nesting even when a coarse clock produced tied timestamps,
// which a timestamp sort alone cannot.
struct SpanNode {
  SpanRecord record;
  std::vector<SpanNode> children;
};

std::vector<SpanNode> build_forest(const std::vector<SpanRecord>& buffer) {
  std::vector<SpanNode> stack;
  for (const SpanRecord& r : buffer) {
    SpanNode node{r, {}};
    while (!stack.empty() && stack.back().record.begin_ns >= r.begin_ns) {
      node.children.push_back(std::move(stack.back()));
      stack.pop_back();
    }
    // Children were popped newest-first; restore chronological order.
    std::reverse(node.children.begin(), node.children.end());
    stack.push_back(std::move(node));
  }
  return stack;  // roots, in chronological (completion) order
}

// Pre/post-order walk: B at entry, E at exit. The emitted stream is
// stack-valid and its timestamps are non-decreasing by construction
// (a child begins no earlier than its parent and ends no later).
void emit_events(const SpanNode& node, std::vector<TraceEvent>& out) {
  const SpanRecord& r = node.record;
  out.push_back({r.begin_ns, true, r.tid, r.phase, r.items});
  for (const SpanNode& child : node.children) emit_events(child, out);
  out.push_back({r.end_ns, false, r.tid, r.phase, r.items});
}

}  // namespace

JsonValue chrome_trace_json(const SpanLog& log) {
  const std::vector<std::vector<SpanRecord>> buffers = log.per_thread();

  std::vector<TraceEvent> events;
  std::uint32_t max_tid = 0;
  std::size_t num_records = 0;
  for (const std::vector<SpanRecord>& buffer : buffers) {
    num_records += buffer.size();
    for (const SpanRecord& r : buffer) {
      if (r.tid > max_tid) max_tid = r.tid;
    }
  }
  events.reserve(num_records * 2);
  for (const std::vector<SpanRecord>& buffer : buffers) {
    for (const SpanNode& root : build_forest(buffer)) {
      emit_events(root, events);
    }
  }
  // Interleave the threads chronologically. Stable: equal timestamps keep
  // each tid's emission order, preserving per-tid stack validity.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  const bool have_records = num_records != 0;

  JsonValue trace_events = JsonValue::array();
  // Metadata first: one process, one named row per recording thread.
  {
    JsonValue meta = JsonValue::object();
    meta.set("name", JsonValue("process_name"));
    meta.set("ph", JsonValue("M"));
    meta.set("pid", JsonValue(0));
    meta.set("tid", JsonValue(0));
    JsonValue args = JsonValue::object();
    args.set("name", JsonValue("dawn"));
    meta.set("args", std::move(args));
    trace_events.push_back(std::move(meta));
  }
  if (have_records) {
    for (std::uint32_t tid = 0; tid <= max_tid; ++tid) {
      JsonValue meta = JsonValue::object();
      meta.set("name", JsonValue("thread_name"));
      meta.set("ph", JsonValue("M"));
      meta.set("pid", JsonValue(0));
      meta.set("tid", JsonValue(static_cast<std::uint64_t>(tid)));
      JsonValue args = JsonValue::object();
      args.set("name", JsonValue("span-thread-" + std::to_string(tid)));
      meta.set("args", std::move(args));
      trace_events.push_back(std::move(meta));
    }
  }
  for (const TraceEvent& e : events) {
    JsonValue event = JsonValue::object();
    event.set("name", JsonValue(name(e.phase)));
    event.set("cat", JsonValue("dawn"));
    event.set("ph", JsonValue(e.begin ? "B" : "E"));
    // Chrome's ts unit is microseconds; a double keeps sub-microsecond spans
    // ordered (ns / 1000 is a monotone map, so per-tid monotonicity holds).
    event.set("ts", JsonValue(static_cast<double>(e.ts_ns) / 1000.0));
    event.set("pid", JsonValue(0));
    event.set("tid", JsonValue(static_cast<std::uint64_t>(e.tid)));
    if (e.begin && e.items != 0) {
      JsonValue args = JsonValue::object();
      args.set("items", JsonValue(e.items));
      event.set("args", std::move(args));
    }
    trace_events.push_back(std::move(event));
  }

  JsonValue doc = JsonValue::object();
  doc.set("traceEvents", std::move(trace_events));
  doc.set("displayTimeUnit", JsonValue("ms"));
  if (log.dropped() != 0) {
    JsonValue other = JsonValue::object();
    other.set("spans_dropped", JsonValue(log.dropped()));
    doc.set("otherData", std::move(other));
  }
  return doc;
}

bool dump_chrome_trace(const SpanLog& log, const std::string& path,
                       std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  out << chrome_trace_json(log).dump(0) << "\n";
  if (!out) {
    if (error != nullptr) *error = "write failed: " + path;
    return false;
  }
  return true;
}

}  // namespace dawn::obs
