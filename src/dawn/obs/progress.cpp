#include "dawn/obs/progress.hpp"

#include <chrono>
#include <cstdio>

namespace dawn::obs {

ProgressReporter::ProgressReporter(const ExploreProgress& progress,
                                   Options options)
    : progress_(progress), options_(std::move(options)) {
  if (options_.interval_ms < 1) options_.interval_ms = 1;
}

ProgressReporter::~ProgressReporter() { stop(); }

void ProgressReporter::start() {
#ifdef DAWN_OBS_DISABLED
  return;  // the engine hooks are compiled out; there is nothing to sample
#else
  if (running_) return;
  if (!options_.jsonl_path.empty()) {
    jsonl_.open(options_.jsonl_path);
    if (!jsonl_) write_failed_ = true;
  }
  stop_requested_ = false;
  start_time_ = std::chrono::steady_clock::now();
  last_sample_time_ = start_time_;
  last_configs_ = progress_.configs.load(std::memory_order_relaxed);
  running_ = true;
  sampler_ = std::thread([this] { sampler_main(); });
#endif
}

void ProgressReporter::stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  sampler_.join();
  running_ = false;
  // Final snapshot: a run that finished inside the first interval still
  // gets one heartbeat, and the last record reflects the finished state.
  sample();
  if (jsonl_.is_open()) {
    jsonl_.flush();
    if (!jsonl_) write_failed_ = true;
    jsonl_.close();
  }
}

void ProgressReporter::sampler_main() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // wait_for, not sleep: stop() interrupts a tick immediately, so a short
    // run never blocks on the sampler.
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return stop_requested_; });
    if (stop_requested_) return;
    sample();
  }
}

void ProgressReporter::sample() {
  const auto now = std::chrono::steady_clock::now();
  const auto t_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now - start_time_)
          .count());
  const double dt_s =
      std::chrono::duration<double>(now - last_sample_time_).count();

  const std::uint64_t configs =
      progress_.configs.load(std::memory_order_relaxed);
  const std::uint64_t edges = progress_.edges.load(std::memory_order_relaxed);
  const std::uint64_t level = progress_.level.load(std::memory_order_relaxed);
  const std::uint64_t frontier =
      progress_.frontier.load(std::memory_order_relaxed);
  const std::int64_t deadline =
      progress_.deadline_ms_remaining.load(std::memory_order_relaxed);

  const double configs_per_sec =
      dt_s > 0.0 && configs >= last_configs_
          ? static_cast<double>(configs - last_configs_) / dt_s
          : 0.0;
  last_configs_ = configs;
  last_sample_time_ = now;

  std::uint64_t shard_min = UINT64_MAX, shard_max = 0, shard_nonzero = 0;
  JsonValue shards = JsonValue::array();
  for (const auto& s : progress_.shard_sizes) {
    const std::uint64_t occ = s.load(std::memory_order_relaxed);
    shards.push_back(JsonValue(occ));
    if (occ != 0) ++shard_nonzero;
    if (occ < shard_min) shard_min = occ;
    if (occ > shard_max) shard_max = occ;
  }
  if (shard_min == UINT64_MAX) shard_min = 0;

  JsonValue record = JsonValue::object();
  record.set("type", JsonValue("heartbeat"));
  record.set("seq", JsonValue(seq_++));
  record.set("t_ms", JsonValue(t_ms));
  record.set("configs", JsonValue(configs));
  record.set("configs_per_sec", JsonValue(configs_per_sec));
  record.set("edges", JsonValue(edges));
  record.set("level", JsonValue(level));
  record.set("frontier", JsonValue(frontier));
  record.set("deadline_ms_remaining", JsonValue(deadline));
  record.set("shard_nonzero", JsonValue(shard_nonzero));
  record.set("shard_min", JsonValue(shard_min));
  record.set("shard_max", JsonValue(shard_max));
  record.set("shards", std::move(shards));

  if (jsonl_.is_open()) {
    jsonl_ << record.dump(0) << "\n";
    if (!jsonl_) write_failed_ = true;
  }
  if (options_.stderr_line) {
    std::fprintf(stderr,
                 "[dawn %6llu ms] configs=%llu (%.0f/s) level=%llu "
                 "frontier=%llu deadline=%lld ms\n",
                 static_cast<unsigned long long>(t_ms),
                 static_cast<unsigned long long>(configs), configs_per_sec,
                 static_cast<unsigned long long>(level),
                 static_cast<unsigned long long>(frontier),
                 static_cast<long long>(deadline));
  }
  records_.push_back(std::move(record));
}

}  // namespace dawn::obs
