// Ambient telemetry: the bundle of span log + progress sink + memory ledger
// a thread currently reports into.
//
// Engines read the ambient bundle once at entry (obs::telemetry()) and
// propagate it BY VALUE into their worker lambdas, installing a
// TelemetryScope on each pool thread — thread_locals do not cross thread
// boundaries on their own:
//
//   const obs::Telemetry tel = obs::telemetry();
//   pool.run([&, tel](int worker) {
//     obs::TelemetryScope scope(tel);     // workers inherit the sinks
//     ... obs::SpanScope / tel.progress hooks fire here ...
//   });
//
// Callers (dawn_cli, the benches, tests) install the outermost scope;
// decide() copies the ambient bundle and overrides the ledger to point at
// its report. Everything is inert by default (all-null bundle) and the
// whole header compiles to empty classes under -DDAWN_OBS_DISABLED.
#pragma once

#include "dawn/obs/memory_ledger.hpp"
#include "dawn/obs/progress.hpp"
#include "dawn/obs/span_log.hpp"

namespace dawn::obs {

struct Telemetry {
  SpanLog* spans = nullptr;
  ExploreProgress* progress = nullptr;
  MemoryLedger* ledger = nullptr;

  bool any() const {
    return spans != nullptr || progress != nullptr || ledger != nullptr;
  }
};

#ifndef DAWN_OBS_DISABLED

// The calling thread's current bundle (each pointer may be null).
inline Telemetry telemetry() {
  return {detail::t_spans, detail::t_progress, detail::t_ledger};
}

// RAII installation; nests (the previous bundle is restored on exit).
class TelemetryScope {
 public:
  explicit TelemetryScope(const Telemetry& t)
      : prev_{detail::t_spans, detail::t_progress, detail::t_ledger} {
    detail::t_spans = t.spans;
    detail::t_progress = t.progress;
    detail::t_ledger = t.ledger;
  }
  ~TelemetryScope() {
    detail::t_spans = prev_.spans;
    detail::t_progress = prev_.progress;
    detail::t_ledger = prev_.ledger;
  }
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

 private:
  Telemetry prev_;
};

#else  // DAWN_OBS_DISABLED: nothing is ever installed.

inline Telemetry telemetry() { return {}; }

class TelemetryScope {
 public:
  explicit TelemetryScope(const Telemetry&) {}
};

#endif  // DAWN_OBS_DISABLED

}  // namespace dawn::obs
