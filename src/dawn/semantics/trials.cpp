#include "dawn/semantics/trials.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "dawn/obs/telemetry.hpp"
#include "dawn/semantics/batched_trials.hpp"
#include "dawn/util/check.hpp"

namespace dawn {

int resolve_parallel_threads(int requested, std::size_t num_jobs) {
  int t = requested;
  if (t <= 0) t = static_cast<int>(std::thread::hardware_concurrency());
  if (t <= 0) t = 1;
  if (static_cast<std::size_t>(t) > num_jobs) t = static_cast<int>(num_jobs);
  return t < 1 ? 1 : t;
}

WorkerPool::WorkerPool(int num_threads) {
  int t = num_threads;
  if (t <= 0) t = static_cast<int>(std::thread::hardware_concurrency());
  if (t < 1) t = 1;
  helpers_.reserve(static_cast<std::size_t>(t - 1));
  for (int w = 1; w < t; ++w) {
    helpers_.emplace_back([this, w] { helper_main(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& th : helpers_) th.join();
}

void WorkerPool::helper_main(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      task = task_;
    }
    (*task)(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (++done_ == helpers_.size()) done_cv_.notify_one();
    }
  }
}

void WorkerPool::run(const std::function<void(int)>& task) {
  if (helpers_.empty()) {
    task(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &task;
    done_ = 0;
    ++generation_;
  }
  start_cv_.notify_all();
  task(0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return done_ == helpers_.size(); });
  task_ = nullptr;
}

// Work-stealing-free fan-out: an atomic cursor over the job index space.
// Each index is claimed by exactly one worker, so no synchronisation is
// needed beyond the joins.
void parallel_for(std::size_t num_jobs, int num_threads,
                  const std::function<void(int, std::size_t)>& job) {
  if (num_jobs == 0) return;
  const int threads = resolve_parallel_threads(num_threads, num_jobs);
  if (threads == 1) {
    for (std::size_t i = 0; i < num_jobs; ++i) job(0, i);
    return;
  }
  std::atomic<std::size_t> cursor{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads - 1));
  const auto drain = [&](int worker) {
    for (std::size_t i = cursor.fetch_add(1); i < num_jobs;
         i = cursor.fetch_add(1)) {
      job(worker, i);
    }
  };
  for (int t = 1; t < threads; ++t) pool.emplace_back(drain, t);
  drain(0);
  for (auto& th : pool) th.join();
}

void parallel_for(std::size_t num_jobs, int num_threads,
                  const std::function<void(std::size_t)>& job) {
  parallel_for(num_jobs, num_threads,
               std::function<void(int, std::size_t)>(
                   [&job](int, std::size_t i) { job(i); }));
}

std::uint64_t trial_seed(std::uint64_t base_seed, int trial) {
  // splitmix64 (Steele et al.): a bijective mix, so distinct trials never
  // collide and the stream is independent of evaluation order.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull *
                                    (static_cast<std::uint64_t>(trial) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::vector<TrialOutcome> run_trials(const MachineFactory& machine_factory,
                                     const Graph& g,
                                     const SchedulerFactory& scheduler_factory,
                                     const TrialOptions& opts) {
  DAWN_CHECK(opts.num_trials >= 0);
  DAWN_CHECK(machine_factory != nullptr);
  DAWN_CHECK(scheduler_factory != nullptr);
  if (opts.batch != TrialBatch::Off) {
    auto batched =
        try_run_trials_batched(machine_factory, g, scheduler_factory, opts);
    if (batched.has_value()) return std::move(*batched);
    DAWN_CHECK_MSG(opts.batch != TrialBatch::Force,
                   "TrialBatch::Force, but the triple does not qualify: " +
                       batched_trials_disqualifier(machine_factory, g,
                                                   scheduler_factory, opts));
  }
  std::vector<TrialOutcome> outcomes(
      static_cast<std::size_t>(opts.num_trials));
  // Per-worker reusable buffers: a worker never runs two trials at once, so
  // the steady-state trial loop performs no per-trial heap allocation.
  std::vector<SimulateScratch> scratch(static_cast<std::size_t>(
      resolve_parallel_threads(opts.num_threads, outcomes.size())));
  const obs::Telemetry tel = obs::telemetry();
  parallel_for(outcomes.size(), opts.num_threads,
               std::function<void(int, std::size_t)>(
                   [&, tel](int worker, std::size_t i) {
                     const obs::TelemetryScope telemetry_scope(tel);
                     TrialOutcome& out = outcomes[i];
                     out.trial = static_cast<int>(i);
                     out.seed = trial_seed(opts.base_seed, out.trial);
                     const auto machine = machine_factory();
                     const auto scheduler = scheduler_factory(out.seed);
                     out.result = simulate(*machine, g, *scheduler, opts.sim,
                                           scratch[static_cast<std::size_t>(
                                               worker)]);
                   }));
  return outcomes;
}

std::vector<SimulateResult> run_jobs(
    std::vector<std::function<SimulateResult()>> jobs, int num_threads) {
  std::vector<SimulateResult> results(jobs.size());
  parallel_for(jobs.size(), num_threads,
               [&](std::size_t i) { results[i] = jobs[i](); });
  return results;
}

TrialSummary summarize(const std::vector<TrialOutcome>& outcomes) {
  TrialSummary s;
  s.num_trials = static_cast<int>(outcomes.size());
  double total_convergence = 0.0;
  for (const auto& o : outcomes) {
    s.max_total_steps = std::max(s.max_total_steps, o.result.total_steps);
    s.metrics.merge(o.result.metrics);  // trial-index order: deterministic
    if (!o.result.converged) continue;
    ++s.converged;
    if (o.result.verdict == Verdict::Accept) ++s.accepted;
    if (o.result.verdict == Verdict::Reject) ++s.rejected;
    total_convergence += static_cast<double>(o.result.convergence_step);
  }
  if (s.converged > 0) {
    s.mean_convergence_step = total_convergence / s.converged;
  }
  return s;
}

}  // namespace dawn
