#include "dawn/semantics/trials.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "dawn/util/check.hpp"

namespace dawn {

namespace {

int resolve_threads(int requested, std::size_t jobs) {
  int t = requested;
  if (t <= 0) t = static_cast<int>(std::thread::hardware_concurrency());
  if (t <= 0) t = 1;
  if (static_cast<std::size_t>(t) > jobs) t = static_cast<int>(jobs);
  return t < 1 ? 1 : t;
}

// Work-stealing-free pool: an atomic cursor over the job index space. Each
// slot is written by exactly one worker, so no further synchronisation is
// needed beyond the joins.
template <typename Job>
void fan_out(std::size_t num_jobs, int num_threads, const Job& job) {
  if (num_jobs == 0) return;
  const int threads = resolve_threads(num_threads, num_jobs);
  if (threads == 1) {
    for (std::size_t i = 0; i < num_jobs; ++i) job(i);
    return;
  }
  std::atomic<std::size_t> cursor{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (std::size_t i = cursor.fetch_add(1); i < num_jobs;
           i = cursor.fetch_add(1)) {
        job(i);
      }
    });
  }
  for (auto& th : pool) th.join();
}

}  // namespace

std::uint64_t trial_seed(std::uint64_t base_seed, int trial) {
  // splitmix64 (Steele et al.): a bijective mix, so distinct trials never
  // collide and the stream is independent of evaluation order.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ull *
                                    (static_cast<std::uint64_t>(trial) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::vector<TrialOutcome> run_trials(const MachineFactory& machine_factory,
                                     const Graph& g,
                                     const SchedulerFactory& scheduler_factory,
                                     const TrialOptions& opts) {
  DAWN_CHECK(opts.num_trials >= 0);
  DAWN_CHECK(machine_factory != nullptr);
  DAWN_CHECK(scheduler_factory != nullptr);
  std::vector<TrialOutcome> outcomes(
      static_cast<std::size_t>(opts.num_trials));
  fan_out(outcomes.size(), opts.num_threads, [&](std::size_t i) {
    TrialOutcome& out = outcomes[i];
    out.trial = static_cast<int>(i);
    out.seed = trial_seed(opts.base_seed, out.trial);
    const auto machine = machine_factory();
    const auto scheduler = scheduler_factory(out.seed);
    out.result = simulate(*machine, g, *scheduler, opts.sim);
  });
  return outcomes;
}

std::vector<SimulateResult> run_jobs(
    std::vector<std::function<SimulateResult()>> jobs, int num_threads) {
  std::vector<SimulateResult> results(jobs.size());
  fan_out(jobs.size(), num_threads,
          [&](std::size_t i) { results[i] = jobs[i](); });
  return results;
}

TrialSummary summarize(const std::vector<TrialOutcome>& outcomes) {
  TrialSummary s;
  s.num_trials = static_cast<int>(outcomes.size());
  double total_convergence = 0.0;
  for (const auto& o : outcomes) {
    s.max_total_steps = std::max(s.max_total_steps, o.result.total_steps);
    s.metrics.merge(o.result.metrics);  // trial-index order: deterministic
    if (!o.result.converged) continue;
    ++s.converged;
    if (o.result.verdict == Verdict::Accept) ++s.accepted;
    if (o.result.verdict == Verdict::Reject) ++s.rejected;
    total_convergence += static_cast<double>(o.result.convergence_step);
  }
  if (s.converged > 0) {
    s.mean_convergence_step = total_convergence / s.converged;
  }
  return s;
}

}  // namespace dawn
