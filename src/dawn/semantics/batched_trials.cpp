#include "dawn/semantics/batched_trials.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <span>
#include <utility>

#include "dawn/automata/neighbourhood.hpp"
#include "dawn/obs/telemetry.hpp"
#include "dawn/util/check.hpp"
#include "dawn/util/simd.hpp"

#if DAWN_SIMD_COMPILED
#include <immintrin.h>
#endif

namespace dawn {

namespace {

// Caps that keep the δ memo table honest: states fit a uint8 SoA cell, the
// per-state capped count fits a base-(β+1) digit, and the table itself stays
// a few megabytes at worst.
constexpr int kMaxStates = 32;
constexpr int kMaxBeta = 8;
constexpr std::uint64_t kMaxSigs = std::uint64_t{1} << 20;
constexpr std::uint64_t kMaxTableEntries = std::uint64_t{1} << 22;

// "No deadline": a lane with Neutral consensus can never retire.
constexpr std::uint64_t kNever = ~std::uint64_t{0};

// Lanes are padded to a 32-byte multiple so the AVX2 kernels never need a
// tail loop; padding lanes carry real (retired-like) state and are ignored.
std::size_t lane_stride(std::size_t lanes) { return (lanes + 31) & ~std::size_t{31}; }

// The capped-count signature of a neighbourhood is its base-(β+1) digit
// string: sig = Σ_q min(count_q, β) · (β+1)^q. Two neighbourhoods with equal
// signatures are equal as capped-count functions, so δ is a pure function of
// (state, sig) — Neighbourhood::from_counts rebuilds the sparse form exactly
// when a table entry faults in.
struct Workspace {
  // δ memo table (persists across a worker's blocks; the factory contract
  // guarantees behavioural identity across machine instances).
  int num_states = 0;
  int beta = 0;
  std::uint32_t num_sigs = 0;
  std::vector<std::uint32_t> pow;                 // pow[q] = (β+1)^q
  std::vector<State> table;                       // (s, sig) -> δ, -1 unset
  std::vector<std::int8_t> vtab;                  // s -> Verdict
  std::vector<std::pair<State, int>> decode;      // from_counts scratch

  // Block state (capacity reused across blocks).
  std::vector<std::uint8_t> soa;     // n * stride
  std::vector<std::uint8_t> next;    // FullSweep staging, n * stride
  std::vector<std::uint32_t> sigs;   // stride signatures for one node
  std::array<std::uint8_t, kMaxStates> cnt{};  // scalar per-state counts

  // Flat CSR copy of the graph's adjacency. Graph stores one heap vector per
  // node; the signature loop touches ~deg of them per lane-step, and chasing
  // scattered vector headers costs more than the neighbour loads themselves.
  std::vector<std::uint32_t> adj_off;  // n + 1 offsets
  std::vector<std::uint32_t> adj;      // neighbour ids, contiguous

  // Per-lane run bookkeeping (mirrors Run's members, one slot per lane).
  std::vector<std::int32_t> accept_cnt;
  std::vector<std::int32_t> reject_cnt;
  std::vector<Verdict> consensus;
  std::vector<std::uint64_t> since;        // step the consensus was set at
  std::vector<std::uint64_t> commits;
  std::vector<std::uint64_t> established;
  std::vector<std::uint64_t> lost;
  std::vector<std::uint64_t> deadline;     // since + window, kNever if Neutral
  std::vector<std::uint32_t> active;       // live lane ids, compacted
  std::vector<std::uint32_t> idx;          // per-active-lane selected node
};

void ensure_table(Workspace& ws, const Machine& machine) {
  if (!ws.table.empty()) {
    // Same worker, later block: the factory contract makes the cached table
    // valid for the fresh machine instance too.
    DAWN_CHECK(ws.num_states == machine.num_states().value_or(-1));
    DAWN_CHECK(ws.beta == machine.beta());
    return;
  }
  ws.num_states = machine.num_states().value();
  ws.beta = machine.beta();
  const auto base = static_cast<std::uint32_t>(ws.beta + 1);
  ws.pow.resize(static_cast<std::size_t>(ws.num_states));
  std::uint64_t sigs = 1;
  for (int q = 0; q < ws.num_states; ++q) {
    ws.pow[static_cast<std::size_t>(q)] = static_cast<std::uint32_t>(sigs);
    sigs *= base;
  }
  ws.num_sigs = static_cast<std::uint32_t>(sigs);  // disqualifier bounded it
  ws.table.assign(static_cast<std::size_t>(ws.num_states) * ws.num_sigs, -1);
  ws.vtab.resize(static_cast<std::size_t>(ws.num_states));
  for (State s = 0; s < ws.num_states; ++s) {
    ws.vtab[static_cast<std::size_t>(s)] =
        static_cast<std::int8_t>(machine.verdict(s));
  }
}

// Faults one δ entry in: decode the signature back into sorted (state,
// count) pairs, rebuild the sparse neighbourhood, step the machine once.
State table_fill(Workspace& ws, const Machine& machine, std::uint8_t s,
                 std::uint32_t sig) {
  ws.decode.clear();
  const auto base = static_cast<std::uint32_t>(ws.beta + 1);
  std::uint32_t rest = sig;
  for (State q = 0; q < ws.num_states && rest != 0; ++q) {
    const std::uint32_t c = rest % base;
    rest /= base;
    if (c != 0) ws.decode.emplace_back(q, static_cast<int>(c));
  }
  const Neighbourhood nbh = Neighbourhood::from_counts(ws.decode, ws.beta);
  const State next = machine.step(static_cast<State>(s), nbh);
  DAWN_CHECK_MSG(next >= 0 && next < ws.num_states,
                 "enumerable machine stepped outside [0, num_states)");
  ws.table[static_cast<std::size_t>(s) * ws.num_sigs + sig] = next;
  return next;
}

inline State table_lookup(Workspace& ws, const Machine& machine,
                          std::uint8_t s, std::uint32_t sig) {
  const State cached =
      ws.table[static_cast<std::size_t>(s) * ws.num_sigs + sig];
  return cached >= 0 ? cached : table_fill(ws, machine, s, sig);
}

void build_adjacency(Workspace& ws, const Graph& g) {
  const auto n = static_cast<std::size_t>(g.n());
  ws.adj_off.resize(n + 1);
  ws.adj.clear();
  ws.adj_off[0] = 0;
  for (std::size_t v = 0; v < n; ++v) {
    for (const NodeId u : g.neighbours(static_cast<NodeId>(v))) {
      ws.adj.push_back(static_cast<std::uint32_t>(u));
    }
    ws.adj_off[v + 1] = static_cast<std::uint32_t>(ws.adj.size());
  }
}

// One lane's signature at node v: O(deg) incremental capped accumulation.
// When deg(v) ≤ β no count can reach the cap, so the signature is a plain
// pow-sum — one pass, no count array. The general path's second pass
// re-zeroes cnt so the array stays all-zero between calls.
inline std::uint32_t lane_signature(Workspace& ws, std::size_t stride,
                                    NodeId v, std::uint32_t lane) {
  const std::uint32_t* adj = ws.adj.data();
  const std::uint32_t lo = ws.adj_off[static_cast<std::size_t>(v)];
  const std::uint32_t hi = ws.adj_off[static_cast<std::size_t>(v) + 1];
  const std::uint8_t* soa = ws.soa.data();
  const std::uint32_t* pow = ws.pow.data();
  std::uint32_t sig = 0;
  if (hi - lo <= static_cast<std::uint32_t>(ws.beta)) {
    for (std::uint32_t e = lo; e < hi; ++e) {
      sig += pow[soa[static_cast<std::size_t>(adj[e]) * stride + lane]];
    }
    return sig;
  }
  const auto beta = static_cast<std::uint8_t>(ws.beta);
  for (std::uint32_t e = lo; e < hi; ++e) {
    const std::uint8_t q =
        soa[static_cast<std::size_t>(adj[e]) * stride + lane];
    if (ws.cnt[q] < beta) {
      ++ws.cnt[q];
      sig += pow[q];
    }
  }
  for (std::uint32_t e = lo; e < hi; ++e) {
    ws.cnt[soa[static_cast<std::size_t>(adj[e]) * stride + lane]] = 0;
  }
  return sig;
}

#if DAWN_SIMD_COMPILED

// All-lane signatures at node v, 32 lanes per 256-bit sweep. Per state q:
// saturating uint8 neighbour counts (exact after min with β, since β ≤ 8 ≪
// 255), widened ×4 to uint32 and multiply-accumulated with pow[q].
__attribute__((target("avx2"))) void node_signatures_avx2(
    const Workspace& ws, std::size_t stride, NodeId v, std::uint32_t* sigs) {
  const std::uint32_t* adj = ws.adj.data();
  const std::uint32_t lo = ws.adj_off[static_cast<std::size_t>(v)];
  const std::uint32_t hi = ws.adj_off[static_cast<std::size_t>(v) + 1];
  const __m256i beta_v = _mm256_set1_epi8(static_cast<char>(ws.beta));
  const __m256i one = _mm256_set1_epi8(1);
  const std::uint8_t* soa = ws.soa.data();
  for (std::size_t c = 0; c < stride; c += 32) {
    __m256i sig0 = _mm256_setzero_si256();
    __m256i sig1 = _mm256_setzero_si256();
    __m256i sig2 = _mm256_setzero_si256();
    __m256i sig3 = _mm256_setzero_si256();
    for (int q = 0; q < ws.num_states; ++q) {
      const __m256i qv = _mm256_set1_epi8(static_cast<char>(q));
      __m256i cnt = _mm256_setzero_si256();
      for (std::uint32_t e = lo; e < hi; ++e) {
        const __m256i row = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
            soa + static_cast<std::size_t>(adj[e]) * stride + c));
        cnt = _mm256_adds_epu8(
            cnt, _mm256_and_si256(_mm256_cmpeq_epi8(row, qv), one));
      }
      cnt = _mm256_min_epu8(cnt, beta_v);
      const __m256i pw =
          _mm256_set1_epi32(static_cast<int>(ws.pow[static_cast<std::size_t>(q)]));
      const __m128i lo = _mm256_castsi256_si128(cnt);
      const __m128i hi = _mm256_extracti128_si256(cnt, 1);
      sig0 = _mm256_add_epi32(
          sig0, _mm256_mullo_epi32(_mm256_cvtepu8_epi32(lo), pw));
      sig1 = _mm256_add_epi32(
          sig1,
          _mm256_mullo_epi32(_mm256_cvtepu8_epi32(_mm_srli_si128(lo, 8)), pw));
      sig2 = _mm256_add_epi32(
          sig2, _mm256_mullo_epi32(_mm256_cvtepu8_epi32(hi), pw));
      sig3 = _mm256_add_epi32(
          sig3,
          _mm256_mullo_epi32(_mm256_cvtepu8_epi32(_mm_srli_si128(hi, 8)), pw));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(sigs + c), sig0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(sigs + c + 8), sig1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(sigs + c + 16), sig2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(sigs + c + 24), sig3);
  }
}

#endif  // DAWN_SIMD_COMPILED

// All-active-lane signatures at node v into ws.sigs (AVX2: every lane in the
// stride; scalar: active lanes only — retired/padding lanes are never read).
void node_signatures(Workspace& ws, std::size_t stride, NodeId v,
                     bool use_avx2) {
#if DAWN_SIMD_COMPILED
  if (use_avx2) {
    node_signatures_avx2(ws, stride, v, ws.sigs.data());
    return;
  }
#else
  (void)use_avx2;
#endif
  for (const std::uint32_t l : ws.active) {
    ws.sigs[l] = lane_signature(ws, stride, v, l);
  }
}

// Replicates Run::commit for one lane: state write, commit count, verdict
// partition counters.
inline void commit_lane(Workspace& ws, std::uint32_t lane, std::uint8_t* cell,
                        std::uint8_t next) {
  const std::int8_t was = ws.vtab[*cell];
  const std::int8_t now = ws.vtab[next];
  *cell = next;
  ++ws.commits[lane];
  if (was == now) return;
  constexpr auto kAccept = static_cast<std::int8_t>(Verdict::Accept);
  constexpr auto kReject = static_cast<std::int8_t>(Verdict::Reject);
  if (was == kAccept) --ws.accept_cnt[lane];
  if (was == kReject) --ws.reject_cnt[lane];
  if (now == kAccept) ++ws.accept_cnt[lane];
  if (now == kReject) ++ws.reject_cnt[lane];
}

// Replicates Run::note_consensus_after_step for one lane. Valid only on the
// single-commit shapes (PerLaneNode, SharedNode), where a lane commits at
// most once per lockstep step: evaluating right after the commit is then the
// same as evaluating at end of step, and uncommitted lanes cannot have
// changed consensus. Keeps the lane's retirement deadline and the loop's
// next-scan lower bound in sync — a deadline can silently *rise* (consensus
// lost), which only makes the next scan spuriously early, never late.
inline void note_consensus(Workspace& ws, std::uint32_t lane,
                           std::uint64_t steps_done, std::uint64_t window,
                           std::int32_t n, std::uint64_t& next_check) {
  const Verdict now = ws.accept_cnt[lane] == n   ? Verdict::Accept
                      : ws.reject_cnt[lane] == n ? Verdict::Reject
                                                 : Verdict::Neutral;
  if (now == ws.consensus[lane]) return;
  if (ws.consensus[lane] != Verdict::Neutral) ++ws.lost[lane];
  if (now != Verdict::Neutral) ++ws.established[lane];
  ws.consensus[lane] = now;
  ws.since[lane] = steps_done;
  std::uint64_t d = kNever;
  if (now != Verdict::Neutral) {
    d = steps_done + window;
    if (d < steps_done) d = kNever;  // saturate huge windows
  }
  ws.deadline[lane] = d;
  if (d < next_check) next_check = d;
}

// Replicates simulate()'s result assembly for one lane at retirement.
void finish_lane(Workspace& ws, std::uint32_t lane, bool converged,
                 std::uint64_t steps_done, std::uint64_t sel_size,
                 bool collect_metrics, TrialOutcome& out) {
  SimulateResult& r = out.result;
  r.converged = converged;
  r.verdict = ws.consensus[lane];
  const std::uint64_t held =
      r.verdict == Verdict::Neutral ? 0 : steps_done - ws.since[lane];
  r.convergence_step = steps_done - held;
  r.total_steps = steps_done;
  if (!collect_metrics) return;
  obs::RunMetrics& m = r.metrics;
  m.add(obs::Counter::SimRuns);
  m.add(obs::Counter::SimSteps, steps_done);
  m.add(obs::Counter::SimActivations, steps_done * sel_size);
  m.add(obs::Counter::SimCommits, ws.commits[lane]);
  if (converged) m.add(obs::Counter::SimConverged);
  m.add(obs::Counter::ConsensusEstablished, ws.established[lane]);
  m.add(obs::Counter::ConsensusLost, ws.lost[lane]);
  m.gauge_max(obs::Gauge::MaxSelectionSize, steps_done > 0 ? sel_size : 0);
}

// Steps one block of lanes in lockstep until every lane converged or
// max_steps ran out. `outs[l]` is lane l's outcome slot.
void run_block(Workspace& ws, const Machine& machine, const Graph& g,
               BatchScheduler& sched, const SimulateOptions& sim,
               std::span<TrialOutcome> outs) {
  const auto start = std::chrono::steady_clock::now();
  const auto n = static_cast<std::size_t>(g.n());
  const std::size_t lanes = outs.size();
  const std::size_t stride = lane_stride(lanes);
  const BatchScheduler::Shape shape = sched.shape();
  const std::uint64_t sel_size =
      shape == BatchScheduler::Shape::FullSweep ? n : 1;
  const bool use_avx2 = simd_tier() == SimdTier::Avx2;

  build_adjacency(ws, g);

  // Initial SoA configuration: every lane starts from δ0, so each row is a
  // constant fill (padding lanes included — they are read by the AVX2
  // kernels but their results are never consumed).
  ws.soa.resize(n * stride);
  ws.sigs.resize(stride);
  std::int32_t accept0 = 0;
  std::int32_t reject0 = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const State s0 = machine.init(g.label(static_cast<NodeId>(v)));
    std::memset(ws.soa.data() + v * stride, static_cast<int>(s0), stride);
    const std::int8_t verd = ws.vtab[static_cast<std::size_t>(s0)];
    if (verd == static_cast<std::int8_t>(Verdict::Accept)) ++accept0;
    if (verd == static_cast<std::int8_t>(Verdict::Reject)) ++reject0;
  }
  const auto ni = static_cast<std::int32_t>(n);
  const Verdict consensus0 = accept0 == ni   ? Verdict::Accept
                             : reject0 == ni ? Verdict::Reject
                                             : Verdict::Neutral;
  ws.accept_cnt.assign(lanes, accept0);
  ws.reject_cnt.assign(lanes, reject0);
  ws.consensus.assign(lanes, consensus0);
  ws.since.assign(lanes, 0);
  ws.commits.assign(lanes, 0);
  ws.established.assign(lanes, 0);
  ws.lost.assign(lanes, 0);
  const std::uint64_t window = sim.stable_window;
  const std::uint64_t deadline0 =
      consensus0 == Verdict::Neutral ? kNever : window;
  ws.deadline.assign(lanes, deadline0);
  ws.active.resize(lanes);
  std::iota(ws.active.begin(), ws.active.end(), 0u);
  ws.idx.resize(lanes);
  if (shape == BatchScheduler::Shape::FullSweep) {
    ws.next.resize(n * stride);
  }

  // Lower bound on the earliest step any lane can retire: the per-step
  // retirement scan on the single-commit shapes only runs when it could
  // matter. note_consensus keeps it a valid lower bound.
  std::uint64_t next_check = deadline0;
  std::uint64_t steps_done = 0;
  while (!ws.active.empty() && steps_done < sim.max_steps) {
    switch (shape) {
      case BatchScheduler::Shape::PerLaneNode: {
        sched.select_batch(g, steps_done, ws.active, ws.idx.data());
        ++steps_done;
        for (std::size_t k = 0; k < ws.active.size(); ++k) {
          const std::uint32_t l = ws.active[k];
          const auto v = static_cast<NodeId>(ws.idx[k]);
          std::uint8_t* cell =
              ws.soa.data() + static_cast<std::size_t>(v) * stride + l;
          const std::uint32_t sig = lane_signature(ws, stride, v, l);
          const State next = table_lookup(ws, machine, *cell, sig);
          if (next != *cell) {
            commit_lane(ws, l, cell, static_cast<std::uint8_t>(next));
            note_consensus(ws, l, steps_done, window, ni, next_check);
          }
        }
        break;
      }
      case BatchScheduler::Shape::SharedNode: {
        const NodeId v = sched.shared_node(g, steps_done);
        ++steps_done;
        node_signatures(ws, stride, v, use_avx2);
        std::uint8_t* row =
            ws.soa.data() + static_cast<std::size_t>(v) * stride;
        for (const std::uint32_t l : ws.active) {
          const State next = table_lookup(ws, machine, row[l], ws.sigs[l]);
          if (next != row[l]) {
            commit_lane(ws, l, row + l, static_cast<std::uint8_t>(next));
            note_consensus(ws, l, steps_done, window, ni, next_check);
          }
        }
        break;
      }
      case BatchScheduler::Shape::FullSweep: {
        ++steps_done;
        // Phase 1: evaluate every node against the pre-step SoA into the
        // staging buffer (simultaneous semantics, as Run::apply's phase 1).
        for (std::size_t v = 0; v < n; ++v) {
          node_signatures(ws, stride, static_cast<NodeId>(v), use_avx2);
          const std::uint8_t* row = ws.soa.data() + v * stride;
          std::uint8_t* stage = ws.next.data() + v * stride;
          for (const std::uint32_t l : ws.active) {
            stage[l] = static_cast<std::uint8_t>(
                table_lookup(ws, machine, row[l], ws.sigs[l]));
          }
        }
        // Phase 2: commit the diffs.
        for (std::size_t v = 0; v < n; ++v) {
          std::uint8_t* row = ws.soa.data() + v * stride;
          const std::uint8_t* stage = ws.next.data() + v * stride;
          for (const std::uint32_t l : ws.active) {
            if (stage[l] != row[l]) commit_lane(ws, l, row + l, stage[l]);
          }
        }
        break;
      }
    }
    if (shape == BatchScheduler::Shape::FullSweep) {
      // A lane commits many times per sweep, so consensus is evaluated once
      // at end of step (Run::note_consensus_after_step), eagerly per lane.
      std::size_t keep = 0;
      for (std::size_t k = 0; k < ws.active.size(); ++k) {
        const std::uint32_t l = ws.active[k];
        const Verdict now = ws.accept_cnt[l] == ni   ? Verdict::Accept
                            : ws.reject_cnt[l] == ni ? Verdict::Reject
                                                     : Verdict::Neutral;
        if (now != ws.consensus[l]) {
          if (ws.consensus[l] != Verdict::Neutral) ++ws.lost[l];
          if (now != Verdict::Neutral) ++ws.established[l];
          ws.consensus[l] = now;
          ws.since[l] = steps_done;
        }
        if (now != Verdict::Neutral &&
            steps_done - ws.since[l] >= window) {
          finish_lane(ws, l, /*converged=*/true, steps_done, sel_size,
                      sim.collect_metrics, outs[l]);
        } else {
          ws.active[keep++] = l;
        }
      }
      ws.active.resize(keep);
    } else if (steps_done >= next_check) {
      // Single-commit shapes: consensus was kept current inline, so the only
      // per-step question is "did a deadline pass?" — answered O(1) against
      // the lower bound, with the O(active) scan run only when it could fire.
      std::size_t keep = 0;
      std::uint64_t rest = kNever;
      for (std::size_t k = 0; k < ws.active.size(); ++k) {
        const std::uint32_t l = ws.active[k];
        if (steps_done >= ws.deadline[l]) {
          finish_lane(ws, l, /*converged=*/true, steps_done, sel_size,
                      sim.collect_metrics, outs[l]);
        } else {
          ws.active[keep++] = l;
          if (ws.deadline[l] < rest) rest = ws.deadline[l];
        }
      }
      ws.active.resize(keep);
      next_check = rest;
    }
  }
  for (const std::uint32_t l : ws.active) {
    finish_lane(ws, l, /*converged=*/false, steps_done, sel_size,
                sim.collect_metrics, outs[l]);
  }
  ws.active.clear();
  if (sim.collect_metrics) {
    // One SimulateTotal sample per lane, as the scalar path records one per
    // run. Lanes share the block, so each gets the block's wall time —
    // timers are outside the determinism contract (obs/metrics.hpp).
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    for (auto& out : outs) {
      out.result.metrics
          .timers[static_cast<std::size_t>(obs::Timer::SimulateTotal)]
          .record(ns);
    }
  }
}

}  // namespace

int batched_lane_width(const TrialOptions& opts) {
  return std::clamp(opts.batch_width, 8, 64);
}

std::string batched_trials_disqualifier(const MachineFactory& machine_factory,
                                        const Graph& g,
                                        const SchedulerFactory& scheduler_factory,
                                        const TrialOptions& opts) {
  DAWN_CHECK(machine_factory != nullptr);
  DAWN_CHECK(scheduler_factory != nullptr);
  if (g.n() < 1) return "empty graph";
  if (opts.sim.trace != nullptr) return "tracing requested";
  if (opts.sim.engine != StepEngine::Incremental) {
    return "full-copy reference engine requested";
  }
  const auto machine = machine_factory();
  if (!machine->parallel_step_safe()) {
    return "machine is not parallel-step-safe (lazily-interning or stateful "
           "step)";
  }
  const std::optional<int> num_states = machine->num_states();
  if (!num_states.has_value()) return "machine is not enumerable";
  const int q = *num_states;
  if (q < 1 || q > kMaxStates) {
    return "num_states outside [1, " + std::to_string(kMaxStates) + "]";
  }
  const int beta = machine->beta();
  if (beta < 1 || beta > kMaxBeta) {
    return "beta outside [1, " + std::to_string(kMaxBeta) + "]";
  }
  std::uint64_t sigs = 1;
  for (int i = 0; i < q; ++i) {
    sigs *= static_cast<std::uint64_t>(beta + 1);
    if (sigs > kMaxSigs) return "signature space exceeds the memo-table cap";
  }
  if (static_cast<std::uint64_t>(q) * sigs > kMaxTableEntries) {
    return "delta table exceeds the memo-table cap";
  }
  for (NodeId v = 0; v < g.n(); ++v) {
    const State s0 = machine->init(g.label(v));
    if (s0 < 0 || s0 >= q) return "initial state outside [0, num_states)";
  }
  std::array<std::unique_ptr<Scheduler>, 1> probe = {
      scheduler_factory(trial_seed(opts.base_seed, 0))};
  if (make_batch_scheduler(probe) == nullptr) {
    return "scheduler has no lockstep form";
  }
  return "";
}

std::optional<std::vector<TrialOutcome>> try_run_trials_batched(
    const MachineFactory& machine_factory, const Graph& g,
    const SchedulerFactory& scheduler_factory, const TrialOptions& opts) {
  DAWN_CHECK(opts.num_trials >= 0);
  if (!batched_trials_disqualifier(machine_factory, g, scheduler_factory, opts)
           .empty()) {
    return std::nullopt;
  }
  const auto num_trials = static_cast<std::size_t>(opts.num_trials);
  std::vector<TrialOutcome> outcomes(num_trials);
  if (num_trials == 0) return outcomes;
  const auto width = static_cast<std::size_t>(batched_lane_width(opts));
  const std::size_t num_blocks = (num_trials + width - 1) / width;
  const int workers =
      resolve_parallel_threads(opts.num_threads, num_blocks);
  std::vector<Workspace> workspaces(static_cast<std::size_t>(workers));
  const obs::Telemetry tel = obs::telemetry();
  parallel_for(
      num_blocks, opts.num_threads,
      std::function<void(int, std::size_t)>([&, tel](int worker,
                                                     std::size_t b) {
        const obs::TelemetryScope telemetry_scope(tel);
        Workspace& ws = workspaces[static_cast<std::size_t>(worker)];
        const std::size_t lo = b * width;
        const std::size_t hi = std::min(lo + width, num_trials);
        obs::SpanScope block_span(tel.spans, obs::Phase::TrialsBlock,
                                  hi - lo);
        const auto machine = machine_factory();
        ensure_table(ws, *machine);
        std::vector<std::unique_ptr<Scheduler>> lane_scheds;
        lane_scheds.reserve(hi - lo);
        for (std::size_t t = lo; t < hi; ++t) {
          outcomes[t].trial = static_cast<int>(t);
          outcomes[t].seed = trial_seed(opts.base_seed, outcomes[t].trial);
          lane_scheds.push_back(scheduler_factory(outcomes[t].seed));
        }
        const auto batch = make_batch_scheduler(lane_scheds);
        DAWN_CHECK_MSG(batch != nullptr,
                       "scheduler family qualified in the probe but a lane "
                       "refused batching (non-deterministic factory?)");
        run_block(ws, *machine, g, *batch, opts.sim,
                  std::span<TrialOutcome>(outcomes).subspan(lo, hi - lo));
      }));
  // Workspace accounting, after the joins (the ledger is not thread-safe):
  // peak SoA/staging/memo footprint of one worker's block. Every workspace
  // sizes its buffers from (machine, graph, options) only, so the per-
  // workspace maximum is thread-count-invariant.
  if (tel.ledger != nullptr) {
    std::size_t peak = 0;
    for (const Workspace& ws : workspaces) {
      const std::size_t ws_bytes =
          ws.table.capacity() * sizeof(State) + ws.soa.capacity() +
          ws.next.capacity() + ws.sigs.capacity() * sizeof(std::uint32_t) +
          (ws.adj_off.capacity() + ws.adj.capacity()) * sizeof(std::uint32_t);
      peak = std::max(peak, ws_bytes);
    }
    tel.ledger->set_max(obs::MemoryAccount::TrialBlockBytes, peak);
  }
  return outcomes;
}

}  // namespace dawn
