// Frontier-parallel sharded explicit-state exploration.
//
// The generic engine behind the parallel pseudo-stochastic deciders
// (explicit configurations, counted clique / star configurations). It runs
// a level-synchronous BFS over the configuration graph:
//
//  * configurations are interned into a striped, hash-sharded store (64
//    shards, each an independently locked hash map — the concurrent
//    counterpart of util/interner.hpp);
//  * each BFS level's frontier is expanded by a persistent WorkerPool
//    (semantics/trials.hpp), workers claiming fixed-size chunks through an
//    atomic cursor; successors, edges and verdicts land in per-worker
//    buffers, so the hot path takes no lock but the owning shard's;
//  * the resulting graph is condensed by the parallel-friendly SCC pass in
//    semantics/scc.{hpp,cpp} and classified by the bottom-SCC rule.
//
// Determinism contract: the decision, the number of reachable
// configurations, and the number of bottom SCCs are properties of the
// reachable configuration graph, not of the exploration order — so the
// returned ExploreOutcome is bit-identical for every thread count,
// including budget-capped outcomes (the explored count is clamped to the
// cap). Wall-clock deadline aborts are the one documented exception. The
// sequential deciders remain in place as the differential reference; see
// docs/DECIDERS.md and tests/test_decide.cpp.
//
// Thread safety: workers call Machine::step / verdict concurrently, so the
// machine must advertise parallel_step_safe(); use explore_threads() to
// clamp the worker count for machines that do not.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dawn/automata/machine.hpp"
#include "dawn/obs/metrics.hpp"
#include "dawn/obs/telemetry.hpp"
#include "dawn/semantics/budget.hpp"
#include "dawn/semantics/decision.hpp"
#include "dawn/semantics/scc.hpp"
#include "dawn/semantics/trials.hpp"
#include "dawn/util/hash.hpp"

namespace dawn {

// Occupancy / scheduling counters for one exploration, reported through the
// obs::RunMetrics sink and surfaced by bench_explicit_parallel. `steals` —
// chunk claims that deviate from a static round-robin split — depends on
// scheduling and is OUTSIDE the determinism contract; everything else is
// thread-count-invariant (frontier sizes are per-level reachable sets).
struct ExploreStats {
  std::size_t configs = 0;
  std::size_t edges = 0;
  std::size_t levels = 0;
  std::size_t steals = 0;
  std::size_t shard_peak = 0;     // largest shard at the end (occupancy)
  std::size_t frontier_peak = 0;  // largest BFS level
  std::size_t store_bytes = 0;    // config-store occupancy (see store bytes())
  // Tiered (out-of-core) runs only — zero for the in-memory engines. All
  // thread-count-invariant: spilling happens at level boundaries against
  // level-end store contents (semantics/tiered_config.hpp).
  std::size_t resident_bytes = 0;       // in-memory store footprint at the end
  std::size_t spill_arena_bytes = 0;    // packed words written to the arena file
  std::size_t spill_frontier_bytes = 0; // delta-encoded frontier levels written
  std::size_t spill_edge_bytes = 0;     // edge-spool bytes written
  std::size_t spill_events = 0;         // level-boundary spill passes
  int threads = 1;                // workers actually used
  // Chi-square of the 64 final shard occupancies against the uniform split
  // (E[chi2] = 63 for a well-mixed hash; see shard_chi_square()). Pins the
  // post-hash_mix shard balance — a regression to concentrated shards shows
  // up as a jump of orders of magnitude. 0 on capped/empty runs.
  double shard_chi2 = 0.0;
};

// Chi-square statistic of `num_shards` occupancy counts against the uniform
// expectation. Sum((o_i - e)^2 / e) with e = total / num_shards; 0 when the
// store is empty. Thread-count-invariant: final shard occupancies are a
// property of the reachable set and the hash, not of scheduling.
inline double shard_chi_square(const std::size_t* occupancies,
                               std::size_t num_shards) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < num_shards; ++i) total += occupancies[i];
  if (total == 0 || num_shards == 0) return 0.0;
  const double expected =
      static_cast<double>(total) / static_cast<double>(num_shards);
  double chi2 = 0.0;
  for (std::size_t i = 0; i < num_shards; ++i) {
    const double d = static_cast<double>(occupancies[i]) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

struct ExploreOutcome {
  Decision decision = Decision::Unknown;
  UnknownReason reason = UnknownReason::None;
  std::size_t num_configs = 0;
  std::size_t num_bottom_sccs = 0;
};

// Striped concurrent interner: values are spread over 2^kShardBits
// independently locked shards by (high) hash bits, so concurrent interning
// mostly touches distinct locks. A value's *global* id packs (local id,
// shard): gids are stable while exploring but not dense; after exploration
// finalize() freezes per-shard prefix offsets and dense() maps gids onto
// [0, size) for the SCC pass.
template <typename ConfigT, typename Hash>
class ShardedConfigStore {
 public:
  static constexpr int kShardBits = 6;
  static constexpr std::size_t kNumShards = std::size_t{1} << kShardBits;
  static constexpr std::size_t kShardMask = kNumShards - 1;

  // Which MemoryLedger account this store's bytes() lands in.
  static constexpr obs::MemoryAccount kMemoryAccount =
      obs::MemoryAccount::VectorStoreBytes;

  struct InternResult {
    std::int64_t gid = 0;
    bool fresh = false;
  };

  InternResult intern(const ConfigT& value) {
    const std::size_t h = Hash{}(value);
    // Run the hash through a splitmix finalizer before extracting shard
    // bits: raw high-middle bits (the old `h >> 24`) carry little entropy
    // for some key families and concentrated whole workloads onto a few
    // shards. unordered_map buckets still consume the unmixed low bits, so
    // shard choice and in-shard placement stay decorrelated.
    const std::size_t shard_idx =
        static_cast<std::size_t>(hash_mix(h)) & kShardMask;
    Shard& s = shards_[shard_idx];
    std::lock_guard<std::mutex> lock(s.mu);
    const auto local = static_cast<std::int32_t>(s.ids.size());
    const auto [it, fresh] = s.ids.try_emplace(value, local);
    if (fresh) total_.fetch_add(1, std::memory_order_relaxed);
    return {pack(it->second, shard_idx), fresh};
  }

  std::size_t size() const { return total_.load(std::memory_order_relaxed); }

  // The shard intern(value) would land in, without interning. The
  // distributed engine (net/dist_explore.*) routes configurations by this:
  // a worker owns a contiguous shard range and only ever interns values
  // whose shard falls inside it.
  std::size_t shard_of(const ConfigT& value) const {
    return static_cast<std::size_t>(hash_mix(Hash{}(value))) & kShardMask;
  }

  // Freezes the dense remap. Call once, after all interning is done.
  void finalize() {
    std::int32_t offset = 0;
    for (std::size_t sh = 0; sh < kNumShards; ++sh) {
      offsets_[sh] = offset;
      const std::size_t occupancy = shards_[sh].ids.size();
      offset += static_cast<std::int32_t>(occupancy);
      if (occupancy > shard_peak_) shard_peak_ = occupancy;
    }
  }

  // Dense id in [0, size) for a gid returned by intern(). Valid after
  // finalize().
  std::int32_t dense(std::int64_t gid) const {
    return offsets_[static_cast<std::size_t>(gid) & kShardMask] +
           static_cast<std::int32_t>(gid >> kShardBits);
  }

  std::size_t shard_peak() const { return shard_peak_; }

  // Final occupancy of each shard, for the chi-square balance statistic.
  // Single-threaded accounting: call after exploration, not during.
  std::array<std::size_t, kNumShards> shard_occupancies() const {
    std::array<std::size_t, kNumShards> out{};
    for (std::size_t sh = 0; sh < kNumShards; ++sh) {
      out[sh] = shards_[sh].ids.size();
    }
    return out;
  }

  // Byte-level occupancy: per-entry value payload (including a vector
  // value's heap block), the hash-node overhead (next pointer + cached
  // hash), and the bucket arrays. An estimate — node layouts are
  // implementation-defined — but measured the same way for every store so
  // packed-vs-vector ratios are meaningful. Single-threaded accounting:
  // call after exploration, not during.
  std::size_t bytes() const { return bytes_for_shard_range(0, kNumShards); }

  // Byte-level occupancy of shards [begin, end). Each shard's contribution
  // is a deterministic function of that shard's contents (bucket growth
  // depends only on insertion count), so summing disjoint ranges measured
  // on different processes equals one process measuring all 64 — the
  // distributed engine relies on this for bit-identical ledgers.
  std::size_t bytes_for_shard_range(std::size_t begin, std::size_t end) const {
    using MapT = std::unordered_map<ConfigT, std::int32_t, Hash>;
    std::size_t total = 0;
    for (std::size_t sh = begin; sh < end; ++sh) {
      const Shard& s = shards_[sh];
      total += s.ids.bucket_count() * sizeof(void*);
      for (const auto& entry : s.ids) {
        total += sizeof(typename MapT::value_type) + 2 * sizeof(void*);
        if constexpr (requires { entry.first.capacity(); }) {
          total += entry.first.capacity() *
                   sizeof(typename ConfigT::value_type);
        }
      }
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::mutex mu;
    std::unordered_map<ConfigT, std::int32_t, Hash> ids;
  };

  static std::int64_t pack(std::int32_t local, std::size_t shard) {
    return (static_cast<std::int64_t>(local) << kShardBits) |
           static_cast<std::int64_t>(shard);
  }

  std::array<Shard, kNumShards> shards_;
  std::array<std::int32_t, kNumShards> offsets_{};
  std::atomic<std::size_t> total_{0};
  std::size_t shard_peak_ = 0;
};

// Worker count for exploring `machine` under `budget`: machines whose
// step() is not thread-safe are clamped to one worker (the engine still
// runs, just sequentially — results are identical either way).
inline int explore_threads(const Machine& machine,
                           const ExploreBudget& budget) {
  const int t = budget.resolve_threads();
  return machine.parallel_step_safe() ? t : 1;
}

// Explores the configuration graph from `initial` and classifies its bottom
// SCCs, interning into a caller-supplied store.
//
//  * `store` implements the ShardedConfigStore contract — intern() /
//    size() / finalize() / dense() / shard_peak() / bytes(). The packed
//    store (semantics/packed_config.hpp) is the other implementation.
//  * make_expander(worker) must return a per-worker expander; calling
//    expander(config, emit) invokes emit(succ) once per successor of
//    `config` (duplicates allowed; silent self-steps must be skipped). The
//    emitted reference may point at worker-local scratch — the engine
//    copies what it keeps.
//  * verdict_of(config) returns the configuration's uniform verdict
//    (Neutral if mixed). Called once per distinct configuration, from
//    whichever worker interned it first.
//
// Both callables run concurrently on budget.resolve_threads() workers; pass
// a budget clamped via explore_threads() when the machine is not
// thread-safe.
template <typename ConfigT, typename Store, typename MakeExpander,
          typename VerdictOf>
ExploreOutcome explore_and_classify_in(Store& store, const ConfigT& initial,
                                       MakeExpander&& make_expander,
                                       VerdictOf&& verdict_of,
                                       const ExploreBudget& budget,
                                       ExploreStats* stats_out = nullptr) {
  const int threads = budget.resolve_threads();
  DeadlineClock deadline(budget);

  // Ambient telemetry, read once and propagated by value into the worker
  // lambdas (thread_locals do not cross thread boundaries). Every hook
  // below is a null-check when telemetry is off; none of them feeds back
  // into the exploration, so the outcome is identical either way.
  const obs::Telemetry tel = obs::telemetry();
  obs::ExploreProgress* const progress = tel.progress;
  if (progress != nullptr) progress->reset();

  struct FrontierEntry {
    std::int64_t gid;
    ConfigT config;  // value copy: never read another shard's value vector
  };
  struct WorkerBuffers {
    std::vector<FrontierEntry> next;
    std::vector<std::pair<std::int64_t, std::int64_t>> edges;  // src, dst
    std::vector<std::pair<std::int64_t, Verdict>> verdicts;
    std::size_t steals = 0;
  };

  WorkerPool pool(threads);
  const auto num_workers = static_cast<std::size_t>(pool.num_workers());
  std::vector<WorkerBuffers> buffers(num_workers);
  std::vector<decltype(make_expander(0))> expanders;
  expanders.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    expanders.push_back(make_expander(static_cast<int>(w)));
  }

  ExploreStats stats;
  stats.threads = pool.num_workers();

  std::vector<FrontierEntry> frontier;
  {
    const auto seeded = store.intern(initial);
    frontier.push_back({seeded.gid, initial});
    buffers[0].verdicts.emplace_back(seeded.gid, verdict_of(initial));
  }

  bool capped = false;
  bool expired = false;
  while (!frontier.empty()) {
    ++stats.levels;
    if (frontier.size() > stats.frontier_peak) {
      stats.frontier_peak = frontier.size();
    }
    if (progress != nullptr) {
      progress->level.store(stats.levels, std::memory_order_relaxed);
      progress->frontier.store(frontier.size(), std::memory_order_relaxed);
      if (deadline.enabled()) {
        progress->deadline_ms_remaining.store(deadline.remaining_ms(),
                                              std::memory_order_relaxed);
      }
    }
    obs::SpanScope level_span(tel.spans, obs::Phase::ExploreExpand,
                              frontier.size());
    // Chunks small enough that uneven expansion cost rebalances, large
    // enough that the cursor isn't contended.
    const std::size_t chunk =
        std::min<std::size_t>(256, frontier.size() / (num_workers * 4) + 1);
    std::atomic<std::size_t> cursor{0};
    pool.run([&, tel](int worker) {
      const obs::TelemetryScope telemetry_scope(tel);
      WorkerBuffers& buf = buffers[static_cast<std::size_t>(worker)];
      auto& expander = expanders[static_cast<std::size_t>(worker)];
      for (;;) {
        // Overshooting workers only waste a capped level's tail; the
        // outcome is already determined, so stop claiming work.
        if (store.size() > budget.max_configs) break;
        if (deadline.enabled() && deadline.expired()) break;
        const std::size_t begin = cursor.fetch_add(chunk);
        if (begin >= frontier.size()) break;
        const std::size_t end = std::min(begin + chunk, frontier.size());
        if ((begin / chunk) % num_workers !=
            static_cast<std::size_t>(worker)) {
          ++buf.steals;  // claim deviates from a static round-robin split
        }
        for (std::size_t i = begin; i < end; ++i) {
          const FrontierEntry& entry = frontier[i];
          expander(entry.config, [&](const ConfigT& succ) {
            const auto interned = store.intern(succ);
            buf.edges.emplace_back(entry.gid, interned.gid);
            if (interned.fresh) {
              buf.verdicts.emplace_back(interned.gid, verdict_of(succ));
              buf.next.push_back({interned.gid, succ});
              if (progress != nullptr) {
                progress->shard_sizes[static_cast<std::size_t>(interned.gid) &
                                      Store::kShardMask]
                    .fetch_add(1, std::memory_order_relaxed);
              }
            }
          });
        }
      }
    });
    if (progress != nullptr) {
      progress->configs.store(store.size(), std::memory_order_relaxed);
      std::uint64_t edges_so_far = 0;
      for (const auto& buf : buffers) edges_so_far += buf.edges.size();
      progress->edges.store(edges_so_far, std::memory_order_relaxed);
    }
    if (store.size() > budget.max_configs) {
      capped = true;
      break;
    }
    if (deadline.expired()) {
      expired = true;
      break;
    }
    frontier.clear();
    for (auto& buf : buffers) {
      for (auto& entry : buf.next) frontier.push_back(std::move(entry));
      buf.next.clear();
    }
  }

  for (const auto& buf : buffers) stats.steals += buf.steals;

  ExploreOutcome outcome;
  if (capped || expired) {
    outcome.decision = Decision::Unknown;
    outcome.reason = capped ? UnknownReason::ConfigCap : UnknownReason::Deadline;
    // Clamp so capped outcomes are thread-count-independent: how far past
    // the cap the workers got is scheduling noise.
    outcome.num_configs =
        capped ? budget.max_configs : std::min(store.size(), budget.max_configs);
    stats.configs = outcome.num_configs;
    stats.store_bytes = store.bytes();
    if (stats_out != nullptr) *stats_out = stats;
    obs::count(obs::Counter::ExploreConfigs, stats.configs);
    obs::count(obs::Counter::ExploreLevels, stats.levels);
    obs::count(obs::Counter::ExploreSteals, stats.steals);
    obs::gauge_max(obs::Gauge::ExploreStoreBytes, stats.store_bytes);
    obs::gauge_max(obs::Gauge::ExploreFrontierPeak, stats.frontier_peak);
    obs::gauge_max(obs::Gauge::ExploreThreads,
                   static_cast<std::uint64_t>(stats.threads));
    return outcome;
  }

  store.finalize();
  const std::size_t total = store.size();
  std::vector<std::vector<std::int32_t>> adj(total);
  std::vector<Verdict> verdicts(total, Verdict::Neutral);
  std::size_t num_edges = 0;
  {
    obs::SpanScope merge_span(tel.spans, obs::Phase::ExploreMerge, total);
    for (auto& buf : buffers) {
      for (const auto& [gid, verdict] : buf.verdicts) {
        verdicts[static_cast<std::size_t>(store.dense(gid))] = verdict;
      }
      num_edges += buf.edges.size();
      for (const auto& [src, dst] : buf.edges) {
        adj[static_cast<std::size_t>(store.dense(src))].push_back(
            store.dense(dst));
      }
      buf.edges.clear();
      buf.edges.shrink_to_fit();
      buf.verdicts.clear();
      buf.verdicts.shrink_to_fit();
    }
  }

  stats.configs = total;
  stats.edges = num_edges;
  stats.shard_peak = store.shard_peak();
  stats.store_bytes = store.bytes();
  {
    const auto occupancies = store.shard_occupancies();
    stats.shard_chi2 = shard_chi_square(occupancies.data(), occupancies.size());
  }

  // Memory ledger — completed runs only, and only thread-count-invariant
  // quantities (final store occupancy, peak frontier level, edge count), so
  // the ledger keeps the DecisionReport bit-identical across thread counts.
  // Capped/deadline runs stop at a scheduling-dependent point and are
  // deliberately not accounted.
  if (tel.ledger != nullptr) {
    tel.ledger->set_max(Store::kMemoryAccount, stats.store_bytes);
    std::size_t frontier_entry_bytes = sizeof(FrontierEntry);
    if constexpr (requires(const ConfigT& c) { c.capacity(); }) {
      frontier_entry_bytes +=
          initial.capacity() * sizeof(typename ConfigT::value_type);
    }
    tel.ledger->set_max(obs::MemoryAccount::FrontierBytes,
                        stats.frontier_peak * frontier_entry_bytes);
    tel.ledger->set_max(obs::MemoryAccount::EdgeBytes,
                        num_edges * 2 * sizeof(std::int64_t));
  }

  const BottomClassification cls = classify_bottom_sccs(
      adj, [&](std::size_t i) { return verdicts[i]; }, threads);

  outcome.decision = cls.decision;
  outcome.num_configs = total;
  outcome.num_bottom_sccs = cls.num_bottom_sccs;

  if (stats_out != nullptr) *stats_out = stats;
  obs::count(obs::Counter::ExploreConfigs, stats.configs);
  obs::count(obs::Counter::ExploreEdges, stats.edges);
  obs::count(obs::Counter::ExploreLevels, stats.levels);
  obs::count(obs::Counter::ExploreSteals, stats.steals);
  obs::gauge_max(obs::Gauge::ExploreShardPeak, stats.shard_peak);
  obs::gauge_max(obs::Gauge::ExploreStoreBytes, stats.store_bytes);
  obs::gauge_max(obs::Gauge::ExploreFrontierPeak, stats.frontier_peak);
  obs::gauge_max(obs::Gauge::ExploreThreads,
                 static_cast<std::uint64_t>(stats.threads));
  return outcome;
}

// Convenience wrapper with a locally-constructed vector-backed store — the
// original entry point; the counted deciders use it unchanged.
template <typename ConfigT, typename Hash, typename MakeExpander,
          typename VerdictOf>
ExploreOutcome explore_and_classify(const ConfigT& initial,
                                    MakeExpander&& make_expander,
                                    VerdictOf&& verdict_of,
                                    const ExploreBudget& budget,
                                    ExploreStats* stats_out = nullptr) {
  ShardedConfigStore<ConfigT, Hash> store;
  return explore_and_classify_in<ConfigT>(
      store, initial, std::forward<MakeExpander>(make_expander),
      std::forward<VerdictOf>(verdict_of), budget, stats_out);
}

}  // namespace dawn
