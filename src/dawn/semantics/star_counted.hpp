// Counted-configuration semantics on star graphs.
//
// Stars are the graph family of the Lemma 3.5 cutoff argument: a
// configuration is determined by the centre's state plus the number of
// leaves in each state, because every leaf sees exactly the centre and the
// centre sees exactly the leaves. Under exclusive selection the counted
// dynamics below is the quotient of the explicit dynamics by leaf
// permutation.
//
// Besides the usual bottom-SCC decider this module exposes the *stable
// rejection / stable acceptance* tests that the proof manipulates: C is
// stably rejecting iff every configuration reachable from C is rejecting.
// The symbolic WSTS engine (symbolic/) computes the same classification by
// backward reachability; the two are cross-checked in the tests.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "dawn/automata/machine.hpp"
#include "dawn/graph/graph.hpp"
#include "dawn/semantics/budget.hpp"
#include "dawn/semantics/decision.hpp"

namespace dawn {

struct StarConfig {
  State centre = 0;
  // Sorted (state, count) pairs with count >= 1.
  std::vector<std::pair<State, std::int64_t>> leaves;

  bool operator==(const StarConfig&) const = default;
};

struct StarConfigHash {
  std::size_t operator()(const StarConfig& c) const;
};

// Initial configuration of the star with the given centre/leaf labels.
StarConfig initial_star_config(const Machine& machine, Label centre,
                               const std::vector<Label>& leaves);

// All distinct successor configurations under exclusive selection (centre
// step plus one leaf step per populated leaf state). Silent steps omitted.
std::vector<StarConfig> star_successors(const Machine& machine,
                                        const StarConfig& config);

// Verdict of the configuration (Neutral if mixed).
Verdict star_consensus(const Machine& machine, const StarConfig& config);

struct StarResult {
  Decision decision = Decision::Unknown;
  UnknownReason reason = UnknownReason::None;
  std::size_t num_configs = 0;
  std::size_t num_bottom_sccs = 0;
};

// Decides the machine on the star under pseudo-stochastic fairness.
StarResult decide_star_pseudo_stochastic(const Machine& machine, Label centre,
                                         const std::vector<Label>& leaves,
                                         const ExploreBudget& opts = {});

struct ExploreStats;

// Frontier-parallel sharded variant (semantics/parallel_explore.hpp); same
// contract as decide_pseudo_stochastic_parallel in explicit_space.hpp.
StarResult decide_star_pseudo_stochastic_parallel(
    const Machine& machine, Label centre, const std::vector<Label>& leaves,
    const ExploreBudget& b = {}, ExploreStats* stats = nullptr);

// C is stably rejecting iff every configuration reachable from C is
// rejecting (the proof's key notion). Returns nullopt on budget exhaustion.
std::optional<bool> is_stably_rejecting(const Machine& machine,
                                        const StarConfig& config,
                                        std::size_t max_configs = 2'000'000);
std::optional<bool> is_stably_accepting(const Machine& machine,
                                        const StarConfig& config,
                                        std::size_t max_configs = 2'000'000);

}  // namespace dawn
