// Graph-symmetry reduction for the explicit-state engines.
//
// Agents are anonymous: δ depends only on a node's state and the capped
// count of neighbour states, and verdicts are per-state. Every
// label-preserving automorphism π of the input graph therefore commutes
// with the step relation — π·succ(C, v) = succ(π·C, π(v)) — so reachability,
// bottom SCCs, and uniform verdicts are invariant under the automorphism
// group, and the decision can be computed on the quotient of the
// configuration graph by the group. The explicit engine realises the
// quotient by interning only a canonical representative of each orbit: on a
// cycle of n identically-labelled nodes that stores up to 2n× fewer
// configurations. docs/SYMMETRY.md has the soundness argument in full.
//
// A SymmetryGroup comes in exactly one of two canonical-form-friendly
// shapes (one of the two member vectors is empty):
//
//   * sortable classes — disjoint classes of pairwise-interchangeable nodes
//     (structural twins: equal label and equal neighbourhood modulo each
//     other), carrying the full symmetric group per class. Canonical form
//     sorts the states within each class. This covers identically-labelled
//     cliques (one class of n), star leaves, and arbitrary graphs' twins.
//   * explicit permutations — a closed permutation group given element by
//     element (identity omitted). Canonical form is the lexicographic
//     minimum over all elements. This covers cycle rotations/reflections,
//     the line reflection, and the closed-form grid/torus groups.
//
// Closure matters: taking the minimum over a non-closed subset would make
// the "canonical" form orbit-dependent and the reduction unsound. All
// constructors below produce closed groups (a label filter intersects a
// group with a stabiliser, which is again a group).
#pragma once

#include <vector>

#include "dawn/automata/config.hpp"
#include "dawn/graph/graph.hpp"

namespace dawn {

struct SymmetryGroup {
  // Mode A: each class lists node ids whose states may be permuted freely.
  // Classes are disjoint; each has size >= 2.
  std::vector<std::vector<NodeId>> sortable_classes;
  // Mode B: perm[v] is the image of node v; identity excluded. The set
  // together with the identity must form a group.
  std::vector<std::vector<NodeId>> permutations;

  bool trivial() const {
    return sortable_classes.empty() && permutations.empty();
  }

  // Natural log of the group order (sum of ln k! over classes, or
  // ln(|perms| + 1)); 0 for the trivial group. Used to pick the larger of
  // two candidate groups and for reporting.
  double log_order() const;
};

// True iff perm is a label-preserving automorphism of g (perm[v] = image).
bool is_automorphism(const Graph& g, const std::vector<NodeId>& perm);

// Checks a caller-supplied group: exactly one mode populated, every
// permutation an automorphism, every class pairwise interchangeable.
// DAWN_CHECKs on violation. Quadratic in group size — meant for groups
// passed into decide_pseudo_stochastic_parallel from outside, once per
// decision, not per configuration.
void validate_symmetry_group(const Graph& g, const SymmetryGroup& grp);

// Detects a sound (sub)group of Aut(g) respecting labels:
//   * structural twin classes (covers cliques, star leaves, and arbitrary
//     graphs with interchangeable nodes);
//   * cycles (connected 2-regular): rotations + reflections that preserve
//     the labelling;
//   * lines (paths): the end-to-end reflection when labels are palindromic.
// Returns the candidate with the largest order; the trivial group when the
// graph has no detectable symmetry. Grids are not detected from adjacency —
// use grid_symmetry() when the topology is known.
SymmetryGroup compute_symmetry(const Graph& g);

// Closed-form group for make_grid(w, h, labels, torus) (row-major node
// ids): the label-preserving subset of the grid's rigid motions —
// horizontal/vertical flips (plus transposes when w == h), and for a torus
// additionally all wraparound translations. The caller must pass the same
// (w, h, torus, labels) the graph was built with;
// decide_pseudo_stochastic_parallel validates override groups against the
// graph before use.
SymmetryGroup grid_symmetry(int w, int h, bool torus,
                            const std::vector<Label>& labels);

// Reusable canonicalisation scratch; grows once, then canonicalize() is
// allocation-free. One per worker — canonicalize() is not re-entrant on a
// shared scratch.
struct CanonScratch {
  Config buf;
  Config best;
};

// Maps `c` to its orbit's canonical representative, in place.
void canonicalize(const SymmetryGroup& grp, Config& c, CanonScratch& scratch);

}  // namespace dawn
