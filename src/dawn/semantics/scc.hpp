// SCC condensation and bottom-SCC classification, shared by the exact
// pseudo-stochastic deciders (explicit, counted-clique, counted-star).
//
// The decision rule (see explicit_space.hpp for the derivation from
// Lemma B.12's fairness argument): a pseudo-stochastic run ends up visiting
// exactly one reachable bottom SCC infinitely often, so the automaton
// accepts iff every reachable bottom SCC is uniformly accepting, rejects iff
// uniformly rejecting, and is inconsistent otherwise.
//
// Two SCC engines share the entry points below:
//
//  * max_threads <= 1 (or a small graph): the seed's iterative Tarjan.
//  * otherwise: trim + forward–backward reachability partitioning
//    (Fleischer/Hendrickson/Pinar). A peeling pass first emits the
//    singleton SCCs that dominate the DAG-like configuration graphs of
//    monotone protocols; the remaining subgraph is split recursively into
//    F∩B / F\S / B\S / rest subproblems that a worker team processes
//    independently, falling back to Tarjan on small subproblems.
//
// The two engines may number components differently, but the canonical
// quantities every decider consumes — the component PARTITION, `count`,
// `is_bottom`, and the classification — are identical for every thread
// count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dawn/automata/machine.hpp"
#include "dawn/semantics/decision.hpp"

namespace dawn {

struct SccInfo {
  std::vector<std::int32_t> component;  // SCC id per node
  std::size_t count = 0;
  std::vector<bool> is_bottom;          // per SCC id
};

SccInfo compute_sccs(const std::vector<std::vector<std::int32_t>>& adj,
                     int max_threads = 1);

struct BottomClassification {
  Decision decision = Decision::Unknown;
  std::size_t num_bottom_sccs = 0;
};

// `verdict_of(i)` must return the uniform verdict of configuration i
// (Accept / Reject, or Neutral for a mixed configuration). With
// max_threads > 1 it may be called from several threads concurrently.
BottomClassification classify_bottom_sccs(
    const std::vector<std::vector<std::int32_t>>& adj,
    const std::function<Verdict(std::size_t)>& verdict_of,
    int max_threads = 1);

}  // namespace dawn
