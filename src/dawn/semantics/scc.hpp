// SCC condensation and bottom-SCC classification, shared by the exact
// pseudo-stochastic deciders (explicit, counted-clique, counted-star).
//
// The decision rule (see explicit_space.hpp for the derivation from
// Lemma B.12's fairness argument): a pseudo-stochastic run ends up visiting
// exactly one reachable bottom SCC infinitely often, so the automaton
// accepts iff every reachable bottom SCC is uniformly accepting, rejects iff
// uniformly rejecting, and is inconsistent otherwise.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dawn/automata/machine.hpp"
#include "dawn/semantics/decision.hpp"

namespace dawn {

struct SccInfo {
  std::vector<std::int32_t> component;  // SCC id per node
  std::size_t count = 0;
  std::vector<bool> is_bottom;          // per SCC id
};

SccInfo compute_sccs(const std::vector<std::vector<std::int32_t>>& adj);

struct BottomClassification {
  Decision decision = Decision::Unknown;
  std::size_t num_bottom_sccs = 0;
};

// `verdict_of(i)` must return the uniform verdict of configuration i
// (Accept / Reject, or Neutral for a mixed configuration).
BottomClassification classify_bottom_sccs(
    const std::vector<std::vector<std::int32_t>>& adj,
    const std::function<Verdict(std::size_t)>& verdict_of);

}  // namespace dawn
