#include "dawn/semantics/explicit_space.hpp"

#include <cstdint>
#include <cstdio>
#include <optional>
#include <vector>

#include "dawn/automata/config.hpp"
#include "dawn/semantics/explicit_expand.hpp"
#include "dawn/semantics/packed_config.hpp"
#include "dawn/semantics/parallel_explore.hpp"
#include "dawn/semantics/scc.hpp"
#include "dawn/semantics/symmetry.hpp"
#include "dawn/semantics/tiered_config.hpp"
#include "dawn/util/check.hpp"
#include "dawn/util/hash.hpp"
#include "dawn/util/interner.hpp"

namespace dawn {

ExplicitResult decide_pseudo_stochastic(const Machine& machine, const Graph& g,
                                        const ExploreBudget& opts) {
  ExplicitResult result;
  Interner<Config, VectorHash<State>> configs;
  std::vector<std::vector<std::int32_t>> adj;
  DeadlineClock deadline(opts);

  configs.id(initial_config(machine, g));
  adj.emplace_back();

  // BFS, building the successor relation under exclusive selection. Silent
  // self-steps are not edges: a frozen configuration is then a singleton
  // bottom SCC, which the classification treats as "stays here forever" —
  // exactly its behaviour under any schedule.
  Neighbourhood nb;
  for (std::size_t head = 0; head < configs.size(); ++head) {
    if (configs.size() > opts.max_configs) {
      result.decision = Decision::Unknown;
      result.reason = UnknownReason::ConfigCap;
      result.num_configs = configs.size();
      return result;
    }
    if (deadline.enabled() && (head & 1023) == 0 && deadline.expired()) {
      result.decision = Decision::Unknown;
      result.reason = UnknownReason::Deadline;
      result.num_configs = configs.size();
      return result;
    }
    const Config current = configs.value(static_cast<std::int32_t>(head));
    Config next = current;
    for (NodeId v = 0; v < g.n(); ++v) {
      Neighbourhood::of_into(g, current, v, machine.beta(), nb);
      const State s = machine.step(current[static_cast<std::size_t>(v)], nb);
      if (s == current[static_cast<std::size_t>(v)]) continue;  // silent
      next[static_cast<std::size_t>(v)] = s;
      const std::size_t before = configs.size();
      const std::int32_t id = configs.id(next);
      if (configs.size() > before) adj.emplace_back();
      adj[head].push_back(id);
      next[static_cast<std::size_t>(v)] = current[static_cast<std::size_t>(v)];
    }
  }
  result.num_configs = configs.size();

  const BottomClassification cls = classify_bottom_sccs(
      adj, [&](std::size_t i) {
        return consensus(machine, configs.value(static_cast<std::int32_t>(i)));
      });
  result.decision = cls.decision;
  result.num_bottom_sccs = cls.num_bottom_sccs;
  return result;
}


ExplicitResult decide_pseudo_stochastic_parallel(const Machine& machine,
                                                 const Graph& g,
                                                 const ExploreBudget& budget,
                                                 ExploreStats* stats,
                                                 const SymmetryGroup* symmetry) {
  ExploreBudget clamped = budget;
  clamped.max_threads = explore_threads(machine, budget);

  // Resolve the symmetry group: a caller-supplied override (validated — it
  // typically comes from closed-form knowledge like grid_symmetry()) or the
  // group detected from the graph. A trivial group degrades to the plain
  // unreduced exploration.
  SymmetryGroup detected;
  const SymmetryGroup* grp = nullptr;
  if (budget.use_symmetry) {
    if (symmetry != nullptr) {
      validate_symmetry_group(g, *symmetry);
      grp = symmetry;
    } else {
      detected = compute_symmetry(g);
      grp = &detected;
    }
    if (grp->trivial()) grp = nullptr;
  }

  Config initial = initial_config(machine, g);
  if (grp != nullptr) {
    CanonScratch init_scratch;
    canonicalize(*grp, initial, init_scratch);
  }

  const std::optional<int> nstates = machine.num_states();
  const bool packed = budget.use_packing && nstates.has_value();
  // The out-of-core store engages only when the budget names both a byte cap
  // and a spill directory, and the machine advertises |Q| (the spill arena
  // is the PackedCodec word stream, so an unpackable machine can't spill).
  const bool want_tiered = budget.max_store_bytes > 0 &&
                           !budget.spill_dir.empty() && nstates.has_value();

  const auto verdict_of = [&](const Config& c) { return consensus(machine, c); };
  const auto run = [&](auto& store) {
    if (grp != nullptr) {
      return explore_and_classify_in<Config>(
          store, initial,
          [&](int) { return CanonExplicitExpander{machine, g, *grp}; },
          verdict_of, clamped, stats);
    }
    return explore_and_classify_in<Config>(
        store, initial,
        [&](int) {
          return ExplicitExpander{machine, g, Neighbourhood{}, Config{}};
        },
        verdict_of, clamped, stats);
  };

  ExploreOutcome out;
  bool tiered_ran = false;
  if (want_tiered) {
    TieredConfigStore store(PackedCodec(*nstates, g.n()), budget.spill_dir,
                            budget.max_store_bytes);
    if (store.ok()) {
      if (grp != nullptr) {
        out = explore_and_classify_tiered(
            store, initial,
            [&](int) { return CanonExplicitExpander{machine, g, *grp}; },
            verdict_of, clamped, stats);
      } else {
        out = explore_and_classify_tiered(
            store, initial,
            [&](int) {
              return ExplicitExpander{machine, g, Neighbourhood{}, Config{}};
            },
            verdict_of, clamped, stats);
      }
      tiered_ran = true;
    } else {
      // An unusable spill dir degrades to the in-memory engines rather than
      // failing the decision; the report's tiered_store flag stays false so
      // callers can tell.
      std::fprintf(stderr,
                   "dawn: tiered store unavailable (%s); in-memory fallback\n",
                   store.error().c_str());
    }
  }
  if (!tiered_ran) {
    if (packed) {
      PackedConfigStore store(PackedCodec(*nstates, g.n()));
      out = run(store);
    } else {
      ShardedConfigStore<Config, VectorHash<State>> store;
      out = run(store);
    }
  }

  ExplicitResult result;
  result.decision = out.decision;
  result.reason = out.reason;
  result.num_configs = out.num_configs;
  result.num_bottom_sccs = out.num_bottom_sccs;
  result.symmetry_reduced = grp != nullptr;
  result.packed_store = tiered_ran || packed;
  result.tiered_store = tiered_ran;
  return result;
}

ExplicitResult decide_pseudo_stochastic_liberal(const Machine& machine,
                                                const Graph& g,
                                                const ExploreBudget& opts) {
  DAWN_CHECK_MSG(g.n() <= 12, "liberal selection enumerates 2^n subsets");
  ExplicitResult result;
  Interner<Config, VectorHash<State>> configs;
  std::vector<std::vector<std::int32_t>> adj;
  DeadlineClock deadline(opts);

  configs.id(initial_config(machine, g));
  adj.emplace_back();

  const auto n = static_cast<std::uint32_t>(g.n());
  std::vector<NodeId> selection;
  for (std::size_t head = 0; head < configs.size(); ++head) {
    if (configs.size() > opts.max_configs) {
      result.decision = Decision::Unknown;
      result.reason = UnknownReason::ConfigCap;
      result.num_configs = configs.size();
      return result;
    }
    if (deadline.enabled() && (head & 255) == 0 && deadline.expired()) {
      result.decision = Decision::Unknown;
      result.reason = UnknownReason::Deadline;
      result.num_configs = configs.size();
      return result;
    }
    const Config current = configs.value(static_cast<std::int32_t>(head));
    for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
      selection.clear();
      for (std::uint32_t v = 0; v < n; ++v) {
        if (mask & (1u << v)) selection.push_back(static_cast<NodeId>(v));
      }
      const Config next = successor(machine, g, current, selection);
      if (next == current) continue;
      const std::size_t before = configs.size();
      const std::int32_t id = configs.id(next);
      if (configs.size() > before) adj.emplace_back();
      adj[head].push_back(id);
    }
  }
  result.num_configs = configs.size();

  const BottomClassification cls = classify_bottom_sccs(
      adj, [&](std::size_t i) {
        return consensus(machine, configs.value(static_cast<std::int32_t>(i)));
      });
  result.decision = cls.decision;
  result.num_bottom_sccs = cls.num_bottom_sccs;
  return result;
}

}  // namespace dawn
