// The outcome of a decision procedure, and the unified decider facade.
//
// Every exact backend (explicit, counted-clique, counted-star, synchronous)
// and the statistical simulate backend is reachable through one entry
// point:
//
//   DecisionReport r = dawn::decide(machine, g, {.method = DecideMethod::Auto});
//
// The facade picks the cheapest sound backend for the topology (counted
// semantics on cliques and stars, the sharded parallel explicit engine
// elsewhere), threads one ExploreBudget through whichever backend runs, and
// reports the method used, the configurations explored, and — when the
// budget was exhausted — an explicit UnknownReason instead of a silent
// Decision::Unknown.
#pragma once

#include <cstdint>
#include <string>

#include "dawn/automata/machine.hpp"
#include "dawn/graph/graph.hpp"
#include "dawn/obs/memory_ledger.hpp"
#include "dawn/semantics/budget.hpp"

namespace dawn {

enum class Decision {
  Accept,
  Reject,
  // The automaton violates the consistency condition on this input: some
  // fair runs accept and others reject (or some fair run never stabilises).
  Inconsistent,
  // The procedure could not decide; see UnknownReason for why.
  Unknown,
};

// Why a procedure returned Decision::Unknown. Decision results used to
// conflate "budget cap hit" with genuine unknowns; every decider result now
// carries one of these so callers (verify, the benches, the CLI) can list
// capped instances separately from counterexamples.
enum class UnknownReason : std::uint8_t {
  None,          // decision is not Unknown
  ConfigCap,     // ExploreBudget::max_configs exhausted
  Deadline,      // ExploreBudget::deadline_ms exceeded
  StepCap,       // bounded-run budget exhausted (synchronous / simulate)
  Inconclusive,  // statistical backend finished without certifying a verdict
  CrossCheck,    // differential cross-check mismatch (an engine bug)
  MemoryCap,     // ExploreBudget::max_store_bytes too small for the
                 // always-resident index (tiered store), or spill I/O failed
};

inline std::string to_string(Decision d) {
  switch (d) {
    case Decision::Accept:
      return "accept";
    case Decision::Reject:
      return "reject";
    case Decision::Inconsistent:
      return "inconsistent";
    case Decision::Unknown:
      return "unknown";
  }
  return "?";
}

inline std::string to_string(UnknownReason r) {
  switch (r) {
    case UnknownReason::None:
      return "none";
    case UnknownReason::ConfigCap:
      return "config-cap";
    case UnknownReason::Deadline:
      return "deadline";
    case UnknownReason::StepCap:
      return "step-cap";
    case UnknownReason::Inconclusive:
      return "inconclusive";
    case UnknownReason::CrossCheck:
      return "cross-check";
    case UnknownReason::MemoryCap:
      return "memory-cap";
  }
  return "?";
}

// The backend a DecisionRequest routes to.
enum class DecideMethod : std::uint8_t {
  Auto,            // clique -> CountedClique, star -> CountedStar, else Explicit
  Explicit,        // sharded parallel explicit-state engine (exclusive sel.)
  ExplicitLiberal, // liberal selection, 2^n subsets — tiny graphs only
  CountedClique,   // counted configurations (graph must be a clique)
  CountedStar,     // counted configurations (graph must be a star)
  Synchronous,     // the deterministic synchronous run's limit cycle
  Simulate,        // statistical: one seeded pseudo-stochastic run
};

inline std::string to_string(DecideMethod m) {
  switch (m) {
    case DecideMethod::Auto:
      return "auto";
    case DecideMethod::Explicit:
      return "explicit";
    case DecideMethod::ExplicitLiberal:
      return "explicit-liberal";
    case DecideMethod::CountedClique:
      return "counted-clique";
    case DecideMethod::CountedStar:
      return "counted-star";
    case DecideMethod::Synchronous:
      return "synchronous";
    case DecideMethod::Simulate:
      return "simulate";
  }
  return "?";
}

struct DecisionRequest {
  DecideMethod method = DecideMethod::Auto;
  // Facade default: use every hardware thread. The parallel engines are
  // bit-identical to the sequential reference for every thread count, so
  // this only changes wall-clock time.
  ExploreBudget budget = [] {
    ExploreBudget b;
    b.max_threads = 0;
    return b;
  }();
  // Differentially pin the parallel engine against the sequential reference
  // decider (where one exists). A mismatch — which would be an engine bug —
  // reports Decision::Unknown with UnknownReason::CrossCheck.
  bool cross_check = false;
  // Simulate backend only.
  std::uint64_t sim_max_steps = 1'000'000;
  std::uint64_t sim_stable_window = 10'000;
  std::uint64_t sim_seed = 0x5eed;
};

// One report shape for every backend. For a fixed (machine, graph, request
// modulo max_threads) the report is bit-identical for every thread count —
// the facade's determinism contract (deadline aborts excepted; see
// docs/DECIDERS.md).
struct DecisionReport {
  Decision decision = Decision::Unknown;
  UnknownReason unknown_reason = UnknownReason::None;
  // The backend that actually ran (never Auto).
  DecideMethod method = DecideMethod::Explicit;
  // Configurations explored (counted configurations for the counted
  // backends, run steps for synchronous/simulate). Clamped to
  // budget.max_configs when the cap was hit, so capped reports are
  // thread-count-independent too.
  std::size_t configs_explored = 0;
  // Bottom SCCs of the reachable configuration graph; 0 for backends that
  // do not classify SCCs (synchronous, simulate) and for capped runs.
  std::size_t num_bottom_sccs = 0;
  bool budget_exhausted = false;
  // False for the statistical simulate backend.
  bool exact = true;
  // Explicit backend only: whether the engine explored the quotient by the
  // graph's automorphism group (budget.use_symmetry and a nontrivial group
  // was found — configs_explored / num_bottom_sccs then count orbits) and
  // whether the bit-packed configuration store was used
  // (budget.use_packing and the machine advertises num_states()).
  bool symmetry_reduced = false;
  bool packed_store = false;
  // Peak bytes per memory account (config store, frontier, edge buffers,
  // interner, trial blocks), filled by the backend that ran. Only
  // thread-count-invariant quantities are accounted, and capped/deadline
  // runs leave the store/frontier/edge accounts empty, so the ledger is
  // covered by the bit-identical contract above (obs/memory_ledger.hpp).
  obs::MemoryLedger memory;

  bool ok() const { return decision != Decision::Unknown; }
  bool operator==(const DecisionReport&) const = default;
};

// The unified decider. Dispatches per request.method; Auto inspects the
// topology. CountedClique/CountedStar requests on a non-clique/non-star
// graph are a programming error (checked).
DecisionReport decide(const Machine& machine, const Graph& g,
                      const DecisionRequest& request = {});

}  // namespace dawn
