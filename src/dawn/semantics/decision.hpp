// The outcome of a decision procedure.
#pragma once

#include <string>

namespace dawn {

enum class Decision {
  Accept,
  Reject,
  // The automaton violates the consistency condition on this input: some
  // fair runs accept and others reject (or some fair run never stabilises).
  Inconsistent,
  // The procedure ran out of budget (configuration space too large).
  Unknown,
};

inline std::string to_string(Decision d) {
  switch (d) {
    case Decision::Accept:
      return "accept";
    case Decision::Reject:
      return "reject";
    case Decision::Inconsistent:
      return "inconsistent";
    case Decision::Unknown:
      return "unknown";
  }
  return "?";
}

}  // namespace dawn
