// Scheduler-driven simulation with convergence detection.
//
// For systems too large for the exact deciders, run the machine under a
// scheduler until the uniform verdict has been held for `stable_window`
// steps. This is a statistical notion of stabilisation (a run could in
// principle leave the consensus later); the exact deciders in this directory
// are used whenever the configuration space is small enough, and the
// benches report which method produced each verdict.
//
// Observability (docs/OBSERVABILITY.md): with `collect_metrics` set, the
// run's counters (steps, activations, commits, consensus churn) are
// harvested into SimulateResult::metrics once at the end — the inner loop
// carries no metrics code, which is what keeps the enabled overhead within
// budget. A non-null `trace` additionally records a bounded JSONL event
// stream (run_start / step / consensus / run_end).
#pragma once

#include <cstdint>

#include "dawn/automata/machine.hpp"
#include "dawn/automata/run.hpp"
#include "dawn/graph/graph.hpp"
#include "dawn/obs/metrics.hpp"
#include "dawn/obs/trace_log.hpp"
#include "dawn/sched/scheduler.hpp"

namespace dawn {

struct SimulateOptions {
  std::uint64_t max_steps = 1'000'000;
  // Declare convergence once a uniform verdict has been held this long.
  std::uint64_t stable_window = 10'000;
  // Which step engine drives the run. Incremental is the production path;
  // FullCopy is the reference semantics kept for differential testing.
  StepEngine engine = StepEngine::Incremental;
  // Harvest run counters into SimulateResult::metrics and install the
  // thread-local sink for the run (interner / scheduler / engine events).
  bool collect_metrics = false;
  // Optional structured event stream (not owned; may outlive many runs).
  obs::TraceLog* trace = nullptr;
};

struct SimulateResult {
  bool converged = false;
  Verdict verdict = Verdict::Neutral;
  // First step from which `verdict` was held continuously to the end of the
  // run (the convergence time reported by the benches). The meaning is the
  // same in both branches: if the run ended with a non-Neutral consensus —
  // converged or not — this is the step that consensus was established at;
  // if the run ended Neutral, no verdict is held and this equals
  // `total_steps`.
  std::uint64_t convergence_step = 0;
  std::uint64_t total_steps = 0;
  // Populated when SimulateOptions::collect_metrics is set; empty (all
  // zeros) otherwise, so default equality still works for the differential
  // tests that compare engine results.
  obs::RunMetrics metrics;

  bool operator==(const SimulateResult&) const = default;
};

SimulateResult simulate(const Machine& machine, const Graph& g,
                        Scheduler& scheduler, const SimulateOptions& opts = {});

// Reusable buffers for back-to-back simulate() calls: the Run's internal
// buffer set plus the selection buffer. A trial worker owns one of these
// and threads it through every trial it runs, so the per-trial heap
// allocations (initial config, verdict cache, staging, neighbourhood
// entries, selection) happen once per worker, not once per trial.
struct SimulateScratch {
  RunScratch run;
  Selection selection;
};

// As above, but recycling `scratch`'s buffers (their contents are
// re-derived; results are identical to the scratch-free overload).
SimulateResult simulate(const Machine& machine, const Graph& g,
                        Scheduler& scheduler, const SimulateOptions& opts,
                        SimulateScratch& scratch);

}  // namespace dawn
