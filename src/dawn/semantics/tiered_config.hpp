// Tiered (out-of-core) configuration store and the streaming exploration
// passes built on it.
//
// The packed store (packed_config.hpp) dies at RAM size, which caps exactly
// the NSPACE(n) / bounded-degree experiments the paper's hierarchy cares
// about. The tiered store keeps the same shard/gid/dense contract but splits
// every configuration into a resident part and a spillable part, modeled on
// the far-memory resident-index/remote-bulk split (SNIPPETS.md):
//
//  * resident, always: the 64 open-addressed shard indexes (one 8-byte hash
//    plus amortised ~6 bytes of probe slots per configuration) — interning
//    needs them on every probe;
//  * spillable: the packed config words (PackedCodec, ceil(log2|Q|) bits
//    per node). Each shard appends fresh words to a hot in-memory arena;
//    whenever the resident footprint exceeds ExploreBudget::max_store_bytes
//    at a BFS level boundary, every hot arena is appended to one unlinked
//    spill file under ExploreBudget::spill_dir and re-read through a shared
//    read-only mmap. Lookups against spilled words keep working (probes
//    compare against the mapping), so dedup is exact across tiers.
//
// Two helper spools stream the rest of the exploration state:
//
//  * FrontierSpool — BFS levels above a small threshold are written as
//    delta-encoded varints over the sorted fresh gids and streamed back in
//    blocks, so a frontier never has to fit in memory;
//  * EdgeSpool — every (src gid, dst gid) transition goes to per-worker
//    append files; the SCC classification re-scans them instead of holding
//    an in-memory adjacency.
//
// classify_bottom_sccs_external() then restructures the FB-SCC pass into
// semi-external passes over the edge file: O(V) node arrays stay resident
// (comp / partition / marks / degrees), each trim peel and each forward-
// backward propagation step is one sequential scan, and subgraphs whose CSR
// fits the classify resident cap are finished by in-memory Tarjan. If the
// active subgraph never fits, the classification gives up deterministically
// with UnknownReason::MemoryCap rather than silently blowing the budget.
//
// Concurrency contract: intern() and value() are thread-safe (per-shard
// locks; the spill mapping is immutable while workers run). spill_to_budget,
// finalize and the byte accessors are level-boundary/coordinator-only. All
// spill files are created O_EXCL then immediately unlinked, so crashes leak
// nothing.
//
// Determinism: spill decisions happen only at level boundaries against
// level-end store contents, which are properties of the reachable set — so
// spill byte counts, MemoryCap aborts, and everything else surfaced in
// DecisionReport stay bit-identical across thread counts.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dawn/automata/config.hpp"
#include "dawn/obs/memory_ledger.hpp"
#include "dawn/semantics/packed_config.hpp"
#include "dawn/semantics/parallel_explore.hpp"

namespace dawn {

// Frontier levels larger than this spill to the FrontierSpool. Small, so
// the streaming path is exercised by every nontrivial tiered run.
inline constexpr std::size_t kFrontierSpillEntries = 256;

class TieredConfigStore {
 public:
  static constexpr int kShardBits = 6;
  static constexpr std::size_t kNumShards = std::size_t{1} << kShardBits;
  static constexpr std::size_t kShardMask = kNumShards - 1;

  // Which MemoryLedger account this store's resident bytes land in.
  static constexpr obs::MemoryAccount kMemoryAccount =
      obs::MemoryAccount::TieredResidentBytes;

  struct InternResult {
    std::int64_t gid = 0;
    bool fresh = false;
  };

  // Opens (and immediately unlinks) the arena spill file under spill_dir.
  // On failure ok() is false and error() says why; callers fall back to the
  // in-memory store.
  TieredConfigStore(const PackedCodec& codec, const std::string& spill_dir,
                    std::size_t max_resident_bytes);
  ~TieredConfigStore();

  TieredConfigStore(const TieredConfigStore&) = delete;
  TieredConfigStore& operator=(const TieredConfigStore&) = delete;

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  // Thread-safe (locks the owning shard). Probes resident and spilled words.
  InternResult intern(const Config& value);

  std::size_t size() const { return total_.load(std::memory_order_relaxed); }

  // The shard intern(value) would land in, without interning — the routing
  // key of the distributed engine (net/dist_explore.*). Must agree with
  // intern() exactly: same encode, same hash, same mix.
  std::size_t shard_of(const Config& value) const;

  // Freezes the dense remap. Call once, after all interning is done.
  void finalize();

  // Dense id in [0, size) for a gid returned by intern(). Valid after
  // finalize().
  std::int32_t dense(std::int64_t gid) const {
    return offsets_[static_cast<std::size_t>(gid) & kShardMask] +
           static_cast<std::int32_t>(gid >> kShardBits);
  }

  std::size_t shard_peak() const { return shard_peak_; }

  // Final occupancy of each shard, for the chi-square balance statistic.
  // Single-threaded accounting: call after exploration, not during.
  std::array<std::size_t, kNumShards> shard_occupancies() const {
    std::array<std::size_t, kNumShards> out{};
    for (std::size_t sh = 0; sh < kNumShards; ++sh) {
      out[sh] = shards_[sh].count;
    }
    return out;
  }

  // Total store footprint: resident plus spilled. Single-threaded
  // accounting — call at level boundaries or after exploration.
  std::size_t bytes() const { return resident_bytes() + spilled_bytes(); }

  // In-memory footprint: hot arenas + hashes + slots + extent directory.
  std::size_t resident_bytes() const;

  // Cumulative packed words written to the spill file.
  std::size_t spilled_bytes() const {
    return file_words_ * sizeof(std::uint64_t);
  }

  std::size_t spill_events() const { return spill_events_; }
  std::size_t max_resident_bytes() const { return max_resident_bytes_; }

  // Level-boundary only (no workers running): if the resident footprint
  // exceeds the budget, appends every hot arena to the spill file and remaps
  // it. False on I/O failure (error() set). After a successful spill the
  // resident footprint is the index alone; if that still exceeds the budget
  // the caller must abort with UnknownReason::MemoryCap.
  bool spill_to_budget();

  // Decodes the stored configuration for a gid. Thread-safe (locks the
  // owning shard): workers re-decode frontier configurations through this.
  void value(std::int64_t gid, Config& out) const;

  const PackedCodec& codec() const { return codec_; }

 private:
  // A run of consecutive local ids whose words live in the spill file.
  struct Extent {
    std::uint64_t word_off = 0;     // into the mapped file, in words
    std::uint32_t first_local = 0;  // first local id of the run
  };

  struct alignas(64) Shard {
    std::mutex mu;
    std::vector<std::uint64_t> hot;  // words for local ids >= hot_first
    std::vector<Extent> extents;     // spilled runs, ascending first_local
    std::uint32_t hot_first = 0;     // first local id still in `hot`
    std::vector<std::uint64_t> hashes;  // per local id, for probes + growth
    std::vector<std::int32_t> slots;    // open addressing; -1 = empty
    std::size_t count = 0;
  };

  static std::int64_t pack(std::int32_t local, std::size_t shard) {
    return (static_cast<std::int64_t>(local) << kShardBits) |
           static_cast<std::int64_t>(shard);
  }

  static void grow(Shard& s);

  // Caller holds the shard lock (or runs single-threaded). Null iff the
  // codec packs to zero words.
  const std::uint64_t* words_of(const Shard& s, std::size_t local) const;

  bool remap();  // munmap + re-mmap after the file grew
  void fail(const std::string& what);

  PackedCodec codec_;
  std::size_t max_resident_bytes_ = 0;
  std::array<Shard, kNumShards> shards_;
  std::array<std::int32_t, kNumShards> offsets_{};
  std::atomic<std::size_t> total_{0};
  std::size_t shard_peak_ = 0;

  int fd_ = -1;
  const std::uint64_t* base_ = nullptr;  // read-only mapping of the file
  std::size_t mapped_bytes_ = 0;
  std::uint64_t file_words_ = 0;
  std::size_t spill_events_ = 0;
  bool ok_ = false;
  std::string error_;
};

// Delta-encoded frontier levels streamed through one unlinked file: put()
// appends a sorted gid level as varint deltas, Cursor streams it back in
// caller-sized chunks.
class FrontierSpool {
 public:
  struct Level {
    std::uint64_t offset = 0;  // byte offset of the encoded level
    std::uint64_t bytes = 0;   // encoded size
    std::uint64_t count = 0;   // gids in the level
  };

  explicit FrontierSpool(const std::string& dir);
  ~FrontierSpool();

  FrontierSpool(const FrontierSpool&) = delete;
  FrontierSpool& operator=(const FrontierSpool&) = delete;

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  // Encodes `sorted_gids` (ascending, unique, non-negative) and appends it.
  // nullopt on I/O failure.
  std::optional<Level> put(const std::vector<std::int64_t>& sorted_gids);

  std::uint64_t bytes_written() const { return bytes_written_; }
  std::size_t levels() const { return levels_; }

  class Cursor {
   public:
    Cursor(const FrontierSpool& spool, Level level)
        : spool_(&spool), level_(level) {}

    // Appends up to max_gids decoded gids to *out (cleared first). False
    // when the level is exhausted or on error (check failed()).
    bool next_chunk(std::vector<std::int64_t>* out, std::size_t max_gids);
    bool failed() const { return failed_; }

   private:
    bool refill();

    const FrontierSpool* spool_;
    Level level_;
    std::uint64_t decoded_ = 0;   // gids handed out so far
    std::uint64_t file_pos_ = 0;  // bytes of the level consumed into buf_
    std::int64_t prev_ = 0;
    std::vector<std::uint8_t> buf_;
    std::size_t buf_pos_ = 0;
    std::size_t buf_len_ = 0;
    bool failed_ = false;
  };

 private:
  friend class Cursor;
  void fail(const std::string& what);

  int fd_ = -1;
  std::uint64_t bytes_written_ = 0;
  std::size_t levels_ = 0;
  bool ok_ = false;
  std::string error_;
};

// Per-worker append-only edge files: workers push (src gid, dst gid) pairs
// through their own buffered writer (no locks), flush_all() runs at level
// boundaries, and ScanCursor streams every edge back for the SCC passes —
// repeatedly, since the semi-external classification is multi-pass.
class EdgeSpool {
 public:
  EdgeSpool(const std::string& dir, int num_writers);
  ~EdgeSpool();

  EdgeSpool(const EdgeSpool&) = delete;
  EdgeSpool& operator=(const EdgeSpool&) = delete;

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  // Writer-exclusive (one worker per writer index), buffered.
  void append(int writer, std::int64_t src, std::int64_t dst);

  // Flushes every writer buffer. Single-threaded; false on I/O failure.
  bool flush_all();

  // Valid after flush_all().
  std::uint64_t num_edges() const;
  std::uint64_t bytes() const { return num_edges() * 2 * sizeof(std::int64_t); }

  class ScanCursor {
   public:
    explicit ScanCursor(const EdgeSpool& spool) : spool_(&spool) {}

    // Next edge in file order (writer files concatenated). False at the
    // end or on error (check failed()).
    bool next(std::int64_t* src, std::int64_t* dst);
    bool failed() const { return failed_; }

   private:
    const EdgeSpool* spool_;
    std::size_t file_ = 0;
    std::uint64_t file_pos_ = 0;  // bytes consumed of the current file
    std::vector<std::int64_t> buf_;
    std::size_t buf_pos_ = 0;
    bool failed_ = false;
  };

 private:
  friend class ScanCursor;

  struct Writer {
    int fd = -1;
    std::vector<std::int64_t> buf;  // interleaved src,dst
    std::uint64_t file_bytes = 0;
    std::uint64_t edges = 0;
    bool fail = false;
  };

  bool flush(Writer& w);
  void fail(const std::string& what);

  std::vector<Writer> writers_;
  bool ok_ = false;
  std::string error_;
};

struct ExternalClassification {
  Decision decision = Decision::Unknown;
  UnknownReason reason = UnknownReason::None;
  std::size_t num_bottom_sccs = 0;
};

// Semi-external bottom-SCC classification over the spooled edges: resident
// O(V) node arrays, trim peels and forward-backward propagation as repeated
// sequential scans of the edge file, in-memory (CSR) Tarjan for active
// subgraphs whose footprint fits resident_cap bytes. Deterministic and
// single-threaded by construction. Returns reason MemoryCap when the active
// subgraph still exceeds resident_cap after the bounded streaming rounds,
// or on edge-scan I/O failure.
ExternalClassification classify_bottom_sccs_external(
    const EdgeSpool& edges, const TieredConfigStore& store,
    const std::vector<Verdict>& verdicts, std::size_t resident_cap);

// The streaming counterpart of explore_and_classify_in for the tiered
// store: gid-only frontier (configurations are re-decoded from the store),
// spooled frontier levels and edges, level-boundary spilling, and the
// semi-external classification. Same determinism contract; the added
// abort reason is UnknownReason::MemoryCap (see ExploreBudget).
template <typename MakeExpander, typename VerdictOf>
ExploreOutcome explore_and_classify_tiered(TieredConfigStore& store,
                                           const Config& initial,
                                           MakeExpander&& make_expander,
                                           VerdictOf&& verdict_of,
                                           const ExploreBudget& budget,
                                           ExploreStats* stats_out = nullptr) {
  const int threads = budget.resolve_threads();
  DeadlineClock deadline(budget);

  const obs::Telemetry tel = obs::telemetry();
  obs::ExploreProgress* const progress = tel.progress;
  if (progress != nullptr) progress->reset();

  WorkerPool pool(threads);
  const auto num_workers = static_cast<std::size_t>(pool.num_workers());
  std::vector<decltype(make_expander(0))> expanders;
  expanders.reserve(num_workers);
  for (std::size_t w = 0; w < num_workers; ++w) {
    expanders.push_back(make_expander(static_cast<int>(w)));
  }

  struct WorkerBuffers {
    std::vector<std::int64_t> next;  // fresh gids found this level
    std::vector<std::pair<std::int64_t, Verdict>> verdicts;  // whole run
    std::vector<std::int64_t> block;  // claimed frontier slice
    std::size_t steals = 0;
  };
  std::vector<WorkerBuffers> buffers(num_workers);

  FrontierSpool fspool(budget.spill_dir);
  EdgeSpool espool(budget.spill_dir, static_cast<int>(num_workers));

  ExploreStats stats;
  stats.threads = pool.num_workers();

  // The current level: resident gid vector or a spooled level reference.
  std::vector<std::int64_t> level_gids;
  std::optional<FrontierSpool::Level> level_spooled;
  std::size_t level_count = 0;

  {
    const auto seeded = store.intern(initial);
    level_gids.push_back(seeded.gid);
    buffers[0].verdicts.emplace_back(seeded.gid, verdict_of(initial));
    level_count = 1;
  }

  bool capped = false;
  bool expired = false;
  bool mem_capped = false;
  bool io_failed = !(store.ok() && fspool.ok() && espool.ok());
  while (level_count > 0 && !io_failed) {
    ++stats.levels;
    if (level_count > stats.frontier_peak) stats.frontier_peak = level_count;
    if (progress != nullptr) {
      progress->level.store(stats.levels, std::memory_order_relaxed);
      progress->frontier.store(level_count, std::memory_order_relaxed);
      if (deadline.enabled()) {
        progress->deadline_ms_remaining.store(deadline.remaining_ms(),
                                              std::memory_order_relaxed);
      }
    }
    obs::SpanScope level_span(tel.spans, obs::Phase::ExploreExpand,
                              level_count);

    // Workers claim fixed-size gid blocks under one mutex; spooled levels
    // decode straight out of the cursor, resident levels slice the vector.
    constexpr std::size_t kBlock = 4096;
    std::mutex src_mu;
    FrontierSpool::Cursor cursor(fspool, level_spooled.value_or(
                                             FrontierSpool::Level{}));
    std::size_t vec_pos = 0;
    std::size_t block_seq = 0;
    const auto next_block = [&](int worker, std::vector<std::int64_t>* out) {
      std::lock_guard<std::mutex> lock(src_mu);
      out->clear();
      if (level_spooled.has_value()) {
        if (!cursor.next_chunk(out, kBlock)) {
          if (cursor.failed()) io_failed = true;
          return false;
        }
      } else {
        if (vec_pos >= level_gids.size()) return false;
        const std::size_t end =
            std::min(vec_pos + kBlock, level_gids.size());
        out->assign(level_gids.begin() + static_cast<std::ptrdiff_t>(vec_pos),
                    level_gids.begin() + static_cast<std::ptrdiff_t>(end));
        vec_pos = end;
      }
      if (block_seq++ % num_workers != static_cast<std::size_t>(worker)) {
        ++buffers[static_cast<std::size_t>(worker)].steals;
      }
      return true;
    };

    pool.run([&, tel](int worker) {
      const obs::TelemetryScope telemetry_scope(tel);
      WorkerBuffers& buf = buffers[static_cast<std::size_t>(worker)];
      auto& expander = expanders[static_cast<std::size_t>(worker)];
      Config current;
      for (;;) {
        if (store.size() > budget.max_configs) break;
        if (deadline.enabled() && deadline.expired()) break;
        if (!next_block(worker, &buf.block)) break;
        for (const std::int64_t gid : buf.block) {
          store.value(gid, current);
          expander(current, [&](const Config& succ) {
            const auto interned = store.intern(succ);
            espool.append(worker, gid, interned.gid);
            if (interned.fresh) {
              buf.verdicts.emplace_back(interned.gid, verdict_of(succ));
              buf.next.push_back(interned.gid);
              if (progress != nullptr) {
                progress
                    ->shard_sizes[static_cast<std::size_t>(interned.gid) &
                                  TieredConfigStore::kShardMask]
                    .fetch_add(1, std::memory_order_relaxed);
              }
            }
          });
        }
      }
    });
    if (progress != nullptr) {
      progress->configs.store(store.size(), std::memory_order_relaxed);
    }
    if (store.size() > budget.max_configs) {
      capped = true;
      break;
    }
    if (deadline.expired()) {
      expired = true;
      break;
    }
    if (io_failed) break;

    {
      // Merge the fresh gids into the next level: concatenation has no
      // duplicates (each fresh gid was interned by exactly one worker), and
      // sorting makes the order — and the delta encoding — deterministic.
      obs::SpanScope merge_span(tel.spans, obs::Phase::ExploreMerge,
                                level_count);
      level_gids.clear();
      level_spooled.reset();
      for (auto& buf : buffers) {
        level_gids.insert(level_gids.end(), buf.next.begin(), buf.next.end());
        buf.next.clear();
      }
      std::sort(level_gids.begin(), level_gids.end());
      level_count = level_gids.size();
      if (level_count > kFrontierSpillEntries) {
        const auto put = fspool.put(level_gids);
        if (!put.has_value()) {
          io_failed = true;
          break;
        }
        level_spooled = *put;
        level_gids.clear();
        level_gids.shrink_to_fit();
      }
    }

    // Level-boundary budget enforcement: spill, then give up (MemoryCap)
    // if the always-resident index alone is over budget.
    if (store.resident_bytes() > store.max_resident_bytes()) {
      obs::SpanScope spill_span(tel.spans, obs::Phase::ExploreSpill,
                                store.resident_bytes());
      if (!store.spill_to_budget()) {
        io_failed = true;
        break;
      }
      ++stats.spill_events;
      if (store.resident_bytes() > store.max_resident_bytes()) {
        mem_capped = true;
        break;
      }
    }
  }

  for (const auto& buf : buffers) stats.steals += buf.steals;
  if (!espool.flush_all()) io_failed = true;

  stats.spill_arena_bytes = store.spilled_bytes();
  stats.spill_frontier_bytes = fspool.bytes_written();
  stats.spill_edge_bytes = io_failed ? 0 : espool.bytes();
  stats.resident_bytes = store.resident_bytes();

  const auto emit_metrics = [&stats] {
    obs::count(obs::Counter::ExploreConfigs, stats.configs);
    obs::count(obs::Counter::ExploreEdges, stats.edges);
    obs::count(obs::Counter::ExploreLevels, stats.levels);
    obs::count(obs::Counter::ExploreSteals, stats.steals);
    obs::count(obs::Counter::ExploreSpillEvents, stats.spill_events);
    obs::count(obs::Counter::ExploreSpillBytes,
               stats.spill_arena_bytes + stats.spill_frontier_bytes +
                   stats.spill_edge_bytes);
    obs::gauge_max(obs::Gauge::ExploreShardPeak, stats.shard_peak);
    obs::gauge_max(obs::Gauge::ExploreStoreBytes, stats.store_bytes);
    obs::gauge_max(obs::Gauge::ExploreResidentBytes, stats.resident_bytes);
    obs::gauge_max(obs::Gauge::ExploreFrontierPeak, stats.frontier_peak);
    obs::gauge_max(obs::Gauge::ExploreThreads,
                   static_cast<std::uint64_t>(stats.threads));
  };

  ExploreOutcome outcome;
  if (capped || expired || mem_capped || io_failed) {
    outcome.decision = Decision::Unknown;
    outcome.reason = capped     ? UnknownReason::ConfigCap
                     : expired  ? UnknownReason::Deadline
                                : UnknownReason::MemoryCap;
    // Clamp like the in-memory engine so capped outcomes stay thread-count
    // independent; MemoryCap aborts happen at level boundaries, where
    // store.size() is already invariant.
    outcome.num_configs = capped ? budget.max_configs
                                 : std::min(store.size(), budget.max_configs);
    stats.configs = outcome.num_configs;
    stats.store_bytes = store.bytes();
    if (stats_out != nullptr) *stats_out = stats;
    emit_metrics();
    return outcome;
  }

  store.finalize();
  const std::size_t total = store.size();
  std::vector<Verdict> verdicts(total, Verdict::Neutral);
  {
    obs::SpanScope merge_span(tel.spans, obs::Phase::ExploreMerge, total);
    for (auto& buf : buffers) {
      for (const auto& [gid, verdict] : buf.verdicts) {
        verdicts[static_cast<std::size_t>(store.dense(gid))] = verdict;
      }
      buf.verdicts.clear();
      buf.verdicts.shrink_to_fit();
    }
  }

  stats.configs = total;
  stats.edges = static_cast<std::size_t>(espool.num_edges());
  stats.shard_peak = store.shard_peak();
  stats.store_bytes = store.bytes();
  {
    const auto occupancies = store.shard_occupancies();
    stats.shard_chi2 = shard_chi_square(occupancies.data(), occupancies.size());
  }

  if (tel.ledger != nullptr) {
    tel.ledger->set_max(TieredConfigStore::kMemoryAccount,
                        stats.resident_bytes);
    tel.ledger->set_max(obs::MemoryAccount::SpillArenaBytes,
                        stats.spill_arena_bytes);
    tel.ledger->set_max(obs::MemoryAccount::SpillFrontierBytes,
                        stats.spill_frontier_bytes);
    tel.ledger->set_max(obs::MemoryAccount::SpillEdgeBytes,
                        stats.spill_edge_bytes);
    tel.ledger->set_max(obs::MemoryAccount::FrontierBytes,
                        stats.frontier_peak * sizeof(std::int64_t));
  }

  // Classification may keep an in-memory CSR up to this cap: the streaming
  // passes are for the store-dominated regime, not for starving the O(V)
  // semi-external allowance. Deterministic — a formula over the budget.
  const std::size_t classify_cap =
      std::max<std::size_t>(store.max_resident_bytes() * 8, 64u << 20);
  const ExternalClassification cls =
      classify_bottom_sccs_external(espool, store, verdicts, classify_cap);

  outcome.decision = cls.decision;
  outcome.reason = cls.reason;
  outcome.num_configs = total;
  outcome.num_bottom_sccs = cls.num_bottom_sccs;

  if (stats_out != nullptr) *stats_out = stats;
  emit_metrics();
  return outcome;
}

}  // namespace dawn
