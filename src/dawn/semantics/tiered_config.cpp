#include "dawn/semantics/tiered_config.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "dawn/obs/telemetry.hpp"
#include "dawn/util/check.hpp"
#include "dawn/util/hash.hpp"
#include "dawn/util/varint.hpp"

namespace dawn {
namespace {

// All spill files are created O_EXCL under the caller's spill dir and
// unlinked immediately: the fd keeps the storage alive, crashes leak
// nothing, and two concurrent stores can never collide.
int open_unlinked(const std::string& dir, const char* tag,
                  std::string* error) {
  static std::atomic<std::uint64_t> seq{0};
  if (dir.empty()) {
    *error = "empty spill dir";
    return -1;
  }
  const std::string path = dir + "/dawn-spill-" + std::to_string(::getpid()) +
                           "-" + tag + "-" +
                           std::to_string(seq.fetch_add(1)) + ".tmp";
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL | O_CLOEXEC,
                        0600);
  if (fd < 0) {
    *error = "open " + path + ": " + std::strerror(errno);
    return -1;
  }
  ::unlink(path.c_str());
  return fd;
}

bool write_all(int fd, const void* data, std::size_t len, std::uint64_t off) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::pwrite(fd, p, len, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    off += static_cast<std::uint64_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t len, std::uint64_t off) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    const ssize_t n = ::pread(fd, p, len, static_cast<off_t>(off));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // short file = corruption, treat as failure
    }
    p += n;
    off += static_cast<std::uint64_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// TieredConfigStore
// ---------------------------------------------------------------------------

TieredConfigStore::TieredConfigStore(const PackedCodec& codec,
                                     const std::string& spill_dir,
                                     std::size_t max_resident_bytes)
    : codec_(codec), max_resident_bytes_(max_resident_bytes) {
  fd_ = open_unlinked(spill_dir, "arena", &error_);
  ok_ = fd_ >= 0;
}

TieredConfigStore::~TieredConfigStore() {
  if (base_ != nullptr) {
    ::munmap(const_cast<std::uint64_t*>(base_), mapped_bytes_);
  }
  if (fd_ >= 0) ::close(fd_);
}

void TieredConfigStore::fail(const std::string& what) {
  ok_ = false;
  if (error_.empty()) error_ = what + ": " + std::strerror(errno);
}

TieredConfigStore::InternResult TieredConfigStore::intern(const Config& value) {
  // Per-thread packing scratch, same scheme as PackedConfigStore.
  static thread_local std::vector<std::uint64_t> scratch;
  const std::size_t w = codec_.words();
  scratch.resize(w);
  codec_.encode(value, scratch.data());
  const std::uint64_t h = PackedCodec::hash_words(scratch.data(), w);
  const std::uint64_t mixed = hash_mix(h);
  const std::size_t shard_idx = static_cast<std::size_t>(mixed) & kShardMask;
  Shard& s = shards_[shard_idx];
  std::lock_guard<std::mutex> lock(s.mu);
  // Small initial table: a tiered store's baseline resident footprint must
  // stay well under tight byte budgets (the fuzz oracle uses tens of KiB).
  if (s.slots.empty()) s.slots.assign(16, -1);
  const std::size_t slot_mask = s.slots.size() - 1;
  std::size_t pos = static_cast<std::size_t>(mixed >> kShardBits) & slot_mask;
  for (;;) {
    const std::int32_t local = s.slots[pos];
    if (local < 0) break;  // empty slot: `value` is fresh, insert here
    const auto lu = static_cast<std::size_t>(local);
    if (s.hashes[lu] == h) {
      const std::uint64_t* words = words_of(s, lu);
      if (w == 0 ||
          std::equal(scratch.begin(), scratch.end(), words)) {
        return {pack(local, shard_idx), false};
      }
    }
    pos = (pos + 1) & slot_mask;
  }
  const auto local = static_cast<std::int32_t>(s.count);
  s.hot.insert(s.hot.end(), scratch.begin(), scratch.end());
  s.hashes.push_back(h);
  s.slots[pos] = local;
  ++s.count;
  // Linear probing stays fast below ~0.7 load.
  if (s.count * 10 >= s.slots.size() * 7) grow(s);
  total_.fetch_add(1, std::memory_order_relaxed);
  return {pack(local, shard_idx), true};
}

std::size_t TieredConfigStore::shard_of(const Config& value) const {
  static thread_local std::vector<std::uint64_t> scratch;
  const std::size_t w = codec_.words();
  scratch.resize(w);
  codec_.encode(value, scratch.data());
  const std::uint64_t h = PackedCodec::hash_words(scratch.data(), w);
  return static_cast<std::size_t>(hash_mix(h)) & kShardMask;
}

void TieredConfigStore::grow(Shard& s) {
  std::vector<std::int32_t> slots(s.slots.size() * 2, -1);
  const std::size_t mask = slots.size() - 1;
  for (std::size_t l = 0; l < s.count; ++l) {
    std::size_t pos =
        static_cast<std::size_t>(hash_mix(s.hashes[l]) >> kShardBits) & mask;
    while (slots[pos] >= 0) pos = (pos + 1) & mask;
    slots[pos] = static_cast<std::int32_t>(l);
  }
  s.slots.swap(slots);
}

const std::uint64_t* TieredConfigStore::words_of(const Shard& s,
                                                 std::size_t local) const {
  const std::size_t w = codec_.words();
  if (w == 0) return nullptr;
  if (local >= s.hot_first) {
    return s.hot.data() + (local - s.hot_first) * w;
  }
  // Spilled: extents are ascending by first_local; take the last one at or
  // below `local`.
  auto it = std::upper_bound(
      s.extents.begin(), s.extents.end(), local,
      [](std::size_t l, const Extent& e) { return l < e.first_local; });
  DAWN_CHECK(it != s.extents.begin());
  --it;
  return base_ + it->word_off + (local - it->first_local) * w;
}

void TieredConfigStore::finalize() {
  std::int32_t offset = 0;
  for (std::size_t sh = 0; sh < kNumShards; ++sh) {
    offsets_[sh] = offset;
    const std::size_t occupancy = shards_[sh].count;
    offset += static_cast<std::int32_t>(occupancy);
    if (occupancy > shard_peak_) shard_peak_ = occupancy;
  }
}

std::size_t TieredConfigStore::resident_bytes() const {
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    total += s.hot.size() * sizeof(std::uint64_t);
    total += s.hashes.size() * sizeof(std::uint64_t);
    total += s.slots.size() * sizeof(std::int32_t);
    total += s.extents.size() * sizeof(Extent);
  }
  return total;
}

bool TieredConfigStore::spill_to_budget() {
  if (!ok_) return false;
  if (resident_bytes() <= max_resident_bytes_) return true;
  if (codec_.words() == 0) return true;  // |Q| = 1: nothing spillable
  bool spilled = false;
  for (std::size_t sh = 0; sh < kNumShards; ++sh) {
    Shard& s = shards_[sh];
    if (s.hot.empty()) continue;
    if (!write_all(fd_, s.hot.data(), s.hot.size() * sizeof(std::uint64_t),
                   file_words_ * sizeof(std::uint64_t))) {
      fail("arena pwrite");
      return false;
    }
    s.extents.push_back({file_words_, s.hot_first});
    file_words_ += s.hot.size();
    s.hot_first = static_cast<std::uint32_t>(s.count);
    s.hot.clear();
    s.hot.shrink_to_fit();
    spilled = true;
  }
  if (spilled) {
    if (!remap()) return false;
    ++spill_events_;
  }
  return true;
}

bool TieredConfigStore::remap() {
  if (base_ != nullptr) {
    ::munmap(const_cast<std::uint64_t*>(base_), mapped_bytes_);
    base_ = nullptr;
    mapped_bytes_ = 0;
  }
  if (file_words_ == 0) return true;
  void* p = ::mmap(nullptr, file_words_ * sizeof(std::uint64_t), PROT_READ,
                   MAP_SHARED, fd_, 0);
  if (p == MAP_FAILED) {
    fail("arena mmap");
    return false;
  }
  base_ = static_cast<const std::uint64_t*>(p);
  mapped_bytes_ = file_words_ * sizeof(std::uint64_t);
  return true;
}

void TieredConfigStore::value(std::int64_t gid, Config& out) const {
  const auto shard_idx = static_cast<std::size_t>(gid) & kShardMask;
  const auto local = static_cast<std::size_t>(gid >> kShardBits);
  auto& s = const_cast<Shard&>(shards_[shard_idx]);
  std::lock_guard<std::mutex> lock(s.mu);
  DAWN_CHECK(local < s.count);
  codec_.decode(words_of(s, local), out);
}

// ---------------------------------------------------------------------------
// FrontierSpool
// ---------------------------------------------------------------------------

FrontierSpool::FrontierSpool(const std::string& dir) {
  fd_ = open_unlinked(dir, "frontier", &error_);
  ok_ = fd_ >= 0;
}

FrontierSpool::~FrontierSpool() {
  if (fd_ >= 0) ::close(fd_);
}

void FrontierSpool::fail(const std::string& what) {
  ok_ = false;
  if (error_.empty()) error_ = what + ": " + std::strerror(errno);
}

std::optional<FrontierSpool::Level> FrontierSpool::put(
    const std::vector<std::int64_t>& sorted_gids) {
  if (!ok_) return std::nullopt;
  std::vector<std::uint8_t> enc;
  enc.reserve(sorted_gids.size() * 2);
  std::int64_t prev = 0;
  bool first = true;
  for (const std::int64_t gid : sorted_gids) {
    DAWN_CHECK(gid >= 0 && (first || gid > prev));
    append_varint(enc, static_cast<std::uint64_t>(first ? gid : gid - prev));
    prev = gid;
    first = false;
  }
  if (!write_all(fd_, enc.data(), enc.size(), bytes_written_)) {
    fail("frontier pwrite");
    return std::nullopt;
  }
  const Level level{bytes_written_, enc.size(), sorted_gids.size()};
  bytes_written_ += enc.size();
  ++levels_;
  return level;
}

bool FrontierSpool::Cursor::refill() {
  constexpr std::size_t kBufBytes = 64u << 10;
  const std::size_t remain = buf_len_ - buf_pos_;
  if (buf_.empty()) buf_.resize(kBufBytes);
  if (remain > 0) std::memmove(buf_.data(), buf_.data() + buf_pos_, remain);
  buf_pos_ = 0;
  buf_len_ = remain;
  const std::uint64_t left = level_.bytes - file_pos_;
  const std::size_t to_read =
      static_cast<std::size_t>(std::min<std::uint64_t>(
          left, static_cast<std::uint64_t>(buf_.size() - remain)));
  if (to_read == 0) return remain > 0;
  if (!read_all(spool_->fd_, buf_.data() + remain, to_read,
                level_.offset + file_pos_)) {
    failed_ = true;
    return false;
  }
  file_pos_ += to_read;
  buf_len_ = remain + to_read;
  return true;
}

bool FrontierSpool::Cursor::next_chunk(std::vector<std::int64_t>* out,
                                       std::size_t max_gids) {
  out->clear();
  if (failed_) return false;
  while (out->size() < max_gids && decoded_ < level_.count) {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (buf_pos_ >= buf_len_ && !refill()) {
        failed_ = true;  // level count says more gids than bytes: corrupt
        return false;
      }
      const std::uint8_t b = buf_[buf_pos_++];
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
      if (shift >= 64) {
        failed_ = true;
        return false;
      }
    }
    prev_ = decoded_ == 0 ? static_cast<std::int64_t>(v)
                          : prev_ + static_cast<std::int64_t>(v);
    out->push_back(prev_);
    ++decoded_;
  }
  return !out->empty();
}

// ---------------------------------------------------------------------------
// EdgeSpool
// ---------------------------------------------------------------------------

namespace {
// 8192 pairs = 128 KiB of buffered edges per worker before a write().
constexpr std::size_t kEdgeBufPairs = 8192;
}  // namespace

EdgeSpool::EdgeSpool(const std::string& dir, int num_writers) {
  DAWN_CHECK(num_writers >= 1);
  writers_.resize(static_cast<std::size_t>(num_writers));
  ok_ = true;
  for (Writer& w : writers_) {
    w.fd = open_unlinked(dir, "edges", &error_);
    if (w.fd < 0) {
      ok_ = false;
      return;
    }
  }
}

EdgeSpool::~EdgeSpool() {
  for (Writer& w : writers_) {
    if (w.fd >= 0) ::close(w.fd);
  }
}

void EdgeSpool::fail(const std::string& what) {
  ok_ = false;
  if (error_.empty()) error_ = what + ": " + std::strerror(errno);
}

void EdgeSpool::append(int writer, std::int64_t src, std::int64_t dst) {
  Writer& w = writers_[static_cast<std::size_t>(writer)];
  if (w.fail) return;
  w.buf.push_back(src);
  w.buf.push_back(dst);
  ++w.edges;
  if (w.buf.size() >= 2 * kEdgeBufPairs) flush(w);
}

bool EdgeSpool::flush(Writer& w) {
  if (w.fail) return false;
  if (w.buf.empty()) return true;
  const std::size_t bytes = w.buf.size() * sizeof(std::int64_t);
  if (!write_all(w.fd, w.buf.data(), bytes, w.file_bytes)) {
    w.fail = true;
    fail("edge pwrite");
    return false;
  }
  w.file_bytes += bytes;
  w.buf.clear();
  return true;
}

bool EdgeSpool::flush_all() {
  bool all_ok = ok_;
  for (Writer& w : writers_) {
    if (!flush(w)) all_ok = false;
  }
  return all_ok;
}

std::uint64_t EdgeSpool::num_edges() const {
  std::uint64_t total = 0;
  for (const Writer& w : writers_) total += w.edges;
  return total;
}

bool EdgeSpool::ScanCursor::next(std::int64_t* src, std::int64_t* dst) {
  if (failed_) return false;
  while (buf_pos_ >= buf_.size()) {
    if (file_ >= spool_->writers_.size()) return false;
    const Writer& w = spool_->writers_[file_];
    const std::uint64_t left = w.file_bytes - file_pos_;
    if (left == 0) {
      ++file_;
      file_pos_ = 0;
      continue;
    }
    // Whole number of pairs per read: 64 KiB or the file tail.
    const std::size_t to_read = static_cast<std::size_t>(
        std::min<std::uint64_t>(left, std::uint64_t{64} << 10));
    DAWN_CHECK(to_read % (2 * sizeof(std::int64_t)) == 0);
    buf_.resize(to_read / sizeof(std::int64_t));
    if (!read_all(w.fd, buf_.data(), to_read, file_pos_)) {
      failed_ = true;
      return false;
    }
    file_pos_ += to_read;
    buf_pos_ = 0;
  }
  *src = buf_[buf_pos_];
  *dst = buf_[buf_pos_ + 1];
  buf_pos_ += 2;
  return true;
}

// ---------------------------------------------------------------------------
// Semi-external bottom-SCC classification
// ---------------------------------------------------------------------------

namespace {

// Iterative Tarjan over a CSR subgraph (same algorithm as scc.cpp's
// compute_sccs_tarjan, restated over offset/target arrays so the fallback's
// footprint is exactly the CSR bytes the resident-cap check admitted).
// Returns the number of SCCs; comp_out gets ids in [0, count).
std::size_t tarjan_csr(const std::vector<std::uint32_t>& off,
                       const std::vector<std::int32_t>& dst,
                       std::vector<std::int32_t>& comp_out) {
  const std::size_t n = off.empty() ? 0 : off.size() - 1;
  comp_out.assign(n, -1);
  std::vector<std::int32_t> index(n, -1), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::int32_t> stack;
  std::int32_t next_index = 0;
  std::int32_t next_scc = 0;

  struct Frame {
    std::int32_t v;
    std::uint32_t child;
  };
  std::vector<Frame> call_stack;

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    call_stack.push_back({static_cast<std::int32_t>(root), 0});
    while (!call_stack.empty()) {
      Frame& f = call_stack.back();
      const auto v = static_cast<std::size_t>(f.v);
      if (f.child == 0) {
        index[v] = low[v] = next_index++;
        stack.push_back(f.v);
        on_stack[v] = true;
      }
      bool descended = false;
      while (off[v] + f.child < off[v + 1]) {
        const std::int32_t w = dst[off[v] + f.child++];
        const auto wu = static_cast<std::size_t>(w);
        if (index[wu] == -1) {
          call_stack.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[wu]) low[v] = std::min(low[v], index[wu]);
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        for (;;) {
          const std::int32_t w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          comp_out[static_cast<std::size_t>(w)] = next_scc;
          if (w == f.v) break;
        }
        ++next_scc;
      }
      const std::int32_t finished = f.v;
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const auto parent = static_cast<std::size_t>(call_stack.back().v);
        low[parent] =
            std::min(low[parent], low[static_cast<std::size_t>(finished)]);
      }
    }
  }
  return static_cast<std::size_t>(next_scc);
}

}  // namespace

ExternalClassification classify_bottom_sccs_external(
    const EdgeSpool& edges, const TieredConfigStore& store,
    const std::vector<Verdict>& verdicts, std::size_t resident_cap) {
  ExternalClassification out;
  const std::size_t n = verdicts.size();
  if (n == 0) {
    out.decision = Decision::Reject;  // matches classify_bottom_sccs on {}
    return out;
  }

  const obs::Telemetry tel = obs::telemetry();

  // Resident O(V) state: final SCC id (-1 = active), refinement partition,
  // and per-pass degree counters.
  std::vector<std::int32_t> comp(n, -1);
  std::vector<std::int32_t> part(n, 0);
  std::vector<std::uint32_t> indeg(n), outdeg(n);
  std::vector<std::uint8_t> mark;
  std::int32_t next_scc = 0;
  std::size_t active = n;

  // One sequential pass over every spooled edge in dense-id space.
  const auto scan = [&](auto&& fn) -> bool {
    EdgeSpool::ScanCursor cur(edges);
    std::int64_t src = 0;
    std::int64_t dst = 0;
    while (cur.next(&src, &dst)) {
      fn(static_cast<std::size_t>(store.dense(src)),
         static_cast<std::size_t>(store.dense(dst)));
    }
    return !cur.failed();
  };
  const auto give_up = [&out](UnknownReason why) {
    out.decision = Decision::Unknown;
    out.reason = why;
    out.num_bottom_sccs = 0;
    return out;
  };

  // Bounded streaming rounds. Each FB round finalises at least one SCC per
  // active partition, so 64 rounds cover any graph the Tarjan fallback
  // can't already swallow; trim passes are capped separately because a long
  // DAG chain peels only its endpoints per scan.
  constexpr int kMaxFbRounds = 64;
  constexpr int kMaxTrimPasses = 512;
  int fb_rounds = 0;

  while (active > 0) {
    // --- Trim: peel indeg==0 / outdeg==0 nodes as singleton SCCs. Degrees
    // count active, same-partition, non-self edges only. ---
    {
      obs::SpanScope span(tel.spans, obs::Phase::ExploreSccTrim, active);
      for (int pass = 0; pass < kMaxTrimPasses && active > 0; ++pass) {
        std::fill(indeg.begin(), indeg.end(), 0);
        std::fill(outdeg.begin(), outdeg.end(), 0);
        const bool io_ok = scan([&](std::size_t u, std::size_t v) {
          if (u == v || comp[u] >= 0 || comp[v] >= 0) return;
          if (part[u] != part[v]) return;
          ++outdeg[u];
          ++indeg[v];
        });
        if (!io_ok) return give_up(UnknownReason::MemoryCap);
        std::size_t removed = 0;
        for (std::size_t v = 0; v < n; ++v) {
          if (comp[v] < 0 && (indeg[v] == 0 || outdeg[v] == 0)) {
            comp[v] = next_scc++;
            ++removed;
          }
        }
        active -= removed;
        if (removed == 0) break;
      }
    }
    if (active == 0) break;

    // --- Tarjan fallback: if the active subgraph's CSR fits the resident
    // cap, load it and finish in memory. Cross-partition active edges are
    // included — SCCs never span partitions, so they are harmless. ---
    std::uint64_t active_edges = 0;
    if (!scan([&](std::size_t u, std::size_t v) {
          if (u != v && comp[u] < 0 && comp[v] < 0) ++active_edges;
        })) {
      return give_up(UnknownReason::MemoryCap);
    }
    const std::uint64_t csr_bytes =
        active_edges * sizeof(std::int32_t) +
        (static_cast<std::uint64_t>(active) + 1) * sizeof(std::uint32_t) +
        static_cast<std::uint64_t>(active) * 2 * sizeof(std::int32_t);
    if (csr_bytes <= resident_cap) {
      // Compact active nodes in dense order, build the CSR in two scans.
      std::vector<std::int32_t> subid(n, -1);
      std::vector<std::int32_t> nodes;
      nodes.reserve(active);
      for (std::size_t v = 0; v < n; ++v) {
        if (comp[v] < 0) {
          subid[v] = static_cast<std::int32_t>(nodes.size());
          nodes.push_back(static_cast<std::int32_t>(v));
        }
      }
      std::vector<std::uint32_t> off(nodes.size() + 1, 0);
      if (!scan([&](std::size_t u, std::size_t v) {
            if (u != v && comp[u] < 0 && comp[v] < 0) {
              ++off[static_cast<std::size_t>(subid[u]) + 1];
            }
          })) {
        return give_up(UnknownReason::MemoryCap);
      }
      for (std::size_t i = 1; i < off.size(); ++i) off[i] += off[i - 1];
      std::vector<std::int32_t> dst(active_edges);
      std::vector<std::uint32_t> cursor(off.begin(), off.end() - 1);
      if (!scan([&](std::size_t u, std::size_t v) {
            if (u != v && comp[u] < 0 && comp[v] < 0) {
              dst[cursor[static_cast<std::size_t>(subid[u])]++] = subid[v];
            }
          })) {
        return give_up(UnknownReason::MemoryCap);
      }
      std::vector<std::int32_t> subcomp;
      const std::size_t count = tarjan_csr(off, dst, subcomp);
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        comp[static_cast<std::size_t>(nodes[i])] = next_scc + subcomp[i];
      }
      next_scc += static_cast<std::int32_t>(count);
      active = 0;
      break;
    }

    if (++fb_rounds > kMaxFbRounds) return give_up(UnknownReason::MemoryCap);

    // --- One forward-backward round: per active partition, pivot = its
    // smallest dense node; propagate F (bit 0) along edges and B (bit 1)
    // against them to fixpoint via repeated scans; F∩B is the pivot's SCC;
    // survivors split into F-only / B-only / untouched partitions. ---
    {
      obs::SpanScope span(tel.spans, obs::Phase::ExploreSccFb, active);
      std::unordered_map<std::int32_t, std::int32_t> pivot;
      for (std::size_t v = 0; v < n; ++v) {
        if (comp[v] < 0) pivot.try_emplace(part[v], static_cast<std::int32_t>(v));
      }
      mark.assign(n, 0);
      for (const auto& [p, pv] : pivot) {
        mark[static_cast<std::size_t>(pv)] = 3;
      }
      bool changed = true;
      while (changed) {
        changed = false;
        const bool io_ok = scan([&](std::size_t u, std::size_t v) {
          if (u == v || comp[u] >= 0 || comp[v] >= 0) return;
          if (part[u] != part[v]) return;
          if ((mark[u] & 1) != 0 && (mark[v] & 1) == 0) {
            mark[v] |= 1;
            changed = true;
          }
          if ((mark[v] & 2) != 0 && (mark[u] & 2) == 0) {
            mark[u] |= 2;
            changed = true;
          }
        });
        if (!io_ok) return give_up(UnknownReason::MemoryCap);
      }
      // Finalise F∩B per partition; renumber the survivors. All ids are
      // assigned in dense-node order, so the refinement is deterministic.
      std::unordered_map<std::int32_t, std::int32_t> scc_of_part;
      std::unordered_map<std::int64_t, std::int32_t> new_part;
      std::int32_t next_part = 0;
      for (std::size_t v = 0; v < n; ++v) {
        if (comp[v] >= 0) continue;
        const std::int32_t p = part[v];
        const int m = mark[v] & 3;
        if (m == 3) {
          const auto [it, fresh] = scc_of_part.try_emplace(p, next_scc);
          if (fresh) ++next_scc;
          comp[v] = it->second;
          --active;
        } else {
          const std::int64_t key = static_cast<std::int64_t>(p) * 4 + m;
          const auto [it, fresh] = new_part.try_emplace(key, next_part);
          if (fresh) ++next_part;
          part[v] = it->second;
        }
      }
    }
  }

  // --- Bottomness + verdict aggregation, one final full scan. ---
  const auto num_sccs = static_cast<std::size_t>(next_scc);
  std::vector<std::uint8_t> has_out(num_sccs, 0);
  if (!scan([&](std::size_t u, std::size_t v) {
        if (comp[u] != comp[v]) has_out[static_cast<std::size_t>(comp[u])] = 1;
      })) {
    return give_up(UnknownReason::MemoryCap);
  }
  std::vector<std::uint8_t> all_acc(num_sccs, 1), all_rej(num_sccs, 1);
  for (std::size_t v = 0; v < n; ++v) {
    const auto s = static_cast<std::size_t>(comp[v]);
    if (has_out[s] != 0) continue;
    if (verdicts[v] != Verdict::Accept) all_acc[s] = 0;
    if (verdicts[v] != Verdict::Reject) all_rej[s] = 0;
  }
  bool any_accept = false, any_reject = false, any_mixed = false;
  for (std::size_t s = 0; s < num_sccs; ++s) {
    if (has_out[s] != 0) continue;
    ++out.num_bottom_sccs;
    if (all_acc[s] != 0) {
      any_accept = true;
    } else if (all_rej[s] != 0) {
      any_reject = true;
    } else {
      any_mixed = true;
    }
  }
  if (any_mixed || (any_accept && any_reject)) {
    out.decision = Decision::Inconsistent;
  } else if (any_accept) {
    out.decision = Decision::Accept;
  } else {
    out.decision = Decision::Reject;
  }
  out.reason = UnknownReason::None;
  return out;
}

}  // namespace dawn
