// Counted-configuration semantics on cliques.
//
// On a clique, a configuration is determined up to isomorphism by the number
// of agents in each state — the observation behind the paper's NL upper
// bound for DAF (Lemma 5.1: "a configuration ... can be stored using
// logarithmic space"). For labelling properties φ we have φ(G) = φ(Ĝ) for
// the clique Ĝ with the same label count, so deciding on cliques decides the
// labelling property.
//
// This decider mirrors explicit_space.hpp (bottom-SCC classification of the
// reachable counted-configuration graph under exclusive selection) but
// scales to populations of hundreds of agents when the reachable state
// support stays small — the regime of all the paper's protocols.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "dawn/automata/machine.hpp"
#include "dawn/graph/graph.hpp"
#include "dawn/semantics/budget.hpp"
#include "dawn/semantics/decision.hpp"
#include "dawn/util/hash.hpp"

namespace dawn {

// Sorted (state, count) pairs with count >= 1.
using CountedConfig = std::vector<std::pair<State, std::int64_t>>;

struct CountedConfigHash {
  std::size_t operator()(const CountedConfig& c) const {
    std::size_t seed = c.size();
    for (auto [q, n] : c) {
      hash_combine(seed, static_cast<std::uint64_t>(q));
      hash_combine(seed, static_cast<std::uint64_t>(n));
    }
    return seed;
  }
};

struct CliqueResult {
  Decision decision = Decision::Unknown;
  UnknownReason reason = UnknownReason::None;
  std::size_t num_configs = 0;
  std::size_t num_bottom_sccs = 0;
};

// The initial counted configuration for the clique with label count `L`.
CountedConfig initial_counted_config(const Machine& machine,
                                     const LabelCount& L);

// One exclusive step: an agent in state `q` (count must be >= 1) evaluates δ
// against the remaining agents. Returns the successor counted configuration.
CountedConfig counted_successor(const Machine& machine,
                                const CountedConfig& config, State q);

// Decides the machine on the clique with label count `L` under
// pseudo-stochastic fairness.
CliqueResult decide_clique_pseudo_stochastic(const Machine& machine,
                                             const LabelCount& L,
                                             const ExploreBudget& opts = {});

struct ExploreStats;

// Frontier-parallel sharded variant (semantics/parallel_explore.hpp); same
// contract as decide_pseudo_stochastic_parallel in explicit_space.hpp:
// thread-count-invariant results, capped counts clamped to the budget,
// non-thread-safe machines clamped to one worker.
CliqueResult decide_clique_pseudo_stochastic_parallel(
    const Machine& machine, const LabelCount& L, const ExploreBudget& b = {},
    ExploreStats* stats = nullptr);

}  // namespace dawn
