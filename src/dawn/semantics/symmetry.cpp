#include "dawn/semantics/symmetry.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "dawn/util/check.hpp"

namespace dawn {
namespace {

// Sorted open neighbourhood of v, with `drop` removed if present.
std::vector<NodeId> sorted_neighbours(const Graph& g, NodeId v, NodeId drop) {
  std::vector<NodeId> nb(g.neighbours(v).begin(), g.neighbours(v).end());
  std::sort(nb.begin(), nb.end());
  const auto it = std::lower_bound(nb.begin(), nb.end(), drop);
  if (it != nb.end() && *it == drop) nb.erase(it);
  return nb;
}

// Structural twin classes: u ~ v iff label(u) == label(v) and
// N(u) \ {v} == N(v) \ {u}. Grouping by (label, sorted open neighbourhood)
// yields the false-twin classes (non-adjacent, shared neighbours); grouping
// by (label, sorted closed neighbourhood) the true-twin classes (adjacent,
// e.g. an identically-labelled clique). Each grouping is an equivalence,
// every transposition inside a class is an automorphism, and a node sits in
// a non-singleton class of at most one of the two partitions (u,v closed-
// equal and u,w open-equal forces w adjacent to u — contradiction with
// false twins being non-adjacent), so the union of the non-singleton
// classes is disjoint and generates a direct product of symmetric groups.
std::vector<std::vector<NodeId>> twin_classes(const Graph& g) {
  std::vector<std::vector<NodeId>> classes;
  using Key = std::pair<Label, std::vector<NodeId>>;
  std::map<Key, std::vector<NodeId>> open_groups;
  std::map<Key, std::vector<NodeId>> closed_groups;
  for (NodeId v = 0; v < g.n(); ++v) {
    std::vector<NodeId> open = sorted_neighbours(g, v, /*drop=*/-1);
    std::vector<NodeId> closed = open;
    closed.insert(std::lower_bound(closed.begin(), closed.end(), v), v);
    open_groups[{g.label(v), std::move(open)}].push_back(v);
    closed_groups[{g.label(v), std::move(closed)}].push_back(v);
  }
  for (auto& [key, nodes] : open_groups) {
    if (nodes.size() >= 2) classes.push_back(std::move(nodes));
  }
  for (auto& [key, nodes] : closed_groups) {
    if (nodes.size() >= 2) classes.push_back(std::move(nodes));
  }
  return classes;
}

// Walks a connected 2-regular graph into cyclic order; the paper convention
// (no self-loops / parallel edges) makes the walk well-defined.
std::vector<NodeId> cycle_order(const Graph& g) {
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(g.n()));
  order.push_back(0);
  order.push_back(g.neighbours(0)[0]);
  while (static_cast<int>(order.size()) < g.n()) {
    const NodeId cur = order.back();
    const NodeId prev = order[order.size() - 2];
    const auto nb = g.neighbours(cur);
    order.push_back(nb[0] == prev ? nb[1] : nb[0]);
  }
  return order;
}

bool label_preserving(const Graph& g, const std::vector<NodeId>& perm) {
  for (NodeId v = 0; v < g.n(); ++v) {
    if (g.label(perm[static_cast<std::size_t>(v)]) != g.label(v)) return false;
  }
  return true;
}

bool is_identity(const std::vector<NodeId>& perm) {
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] != static_cast<NodeId>(i)) return false;
  }
  return true;
}

void push_if_admissible(const Graph& g, std::vector<NodeId> perm,
                        std::vector<std::vector<NodeId>>& out) {
  if (is_identity(perm) || !label_preserving(g, perm)) return;
  out.push_back(std::move(perm));
}

// The dihedral group of a detected cycle (rotations and reflections in the
// walked cyclic order), filtered down to the label-preserving subgroup.
std::vector<std::vector<NodeId>> cycle_group(const Graph& g) {
  const std::vector<NodeId> ord = cycle_order(g);
  const std::size_t n = ord.size();
  std::vector<std::vector<NodeId>> perms;
  std::vector<NodeId> perm(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      perm[static_cast<std::size_t>(ord[i])] = ord[(i + r) % n];
    }
    push_if_admissible(g, perm, perms);
  }
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      perm[static_cast<std::size_t>(ord[i])] = ord[(r + n - i) % n];
    }
    push_if_admissible(g, perm, perms);
  }
  return perms;
}

// The end-to-end reflection of a detected path, if labels are palindromic.
std::vector<std::vector<NodeId>> line_group(const Graph& g, NodeId end) {
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(g.n()));
  order.push_back(end);
  NodeId prev = -1;
  while (static_cast<int>(order.size()) < g.n()) {
    const NodeId cur = order.back();
    const auto nb = g.neighbours(cur);
    const NodeId next = (nb.size() > 1 && nb[0] == prev) ? nb[1] : nb[0];
    prev = cur;
    order.push_back(next);
  }
  const std::size_t n = order.size();
  std::vector<NodeId> perm(n);
  for (std::size_t i = 0; i < n; ++i) {
    perm[static_cast<std::size_t>(order[i])] = order[n - 1 - i];
  }
  std::vector<std::vector<NodeId>> perms;
  push_if_admissible(g, perm, perms);
  return perms;
}

double classes_log_order(const std::vector<std::vector<NodeId>>& classes) {
  double total = 0.0;
  for (const auto& cls : classes) {
    for (std::size_t k = 2; k <= cls.size(); ++k) {
      total += std::log(static_cast<double>(k));
    }
  }
  return total;
}

}  // namespace

double SymmetryGroup::log_order() const {
  if (!sortable_classes.empty()) return classes_log_order(sortable_classes);
  if (!permutations.empty()) {
    return std::log(static_cast<double>(permutations.size() + 1));
  }
  return 0.0;
}

bool is_automorphism(const Graph& g, const std::vector<NodeId>& perm) {
  if (static_cast<int>(perm.size()) != g.n()) return false;
  std::vector<bool> seen(perm.size(), false);
  for (const NodeId image : perm) {
    if (image < 0 || image >= g.n() || seen[static_cast<std::size_t>(image)]) {
      return false;
    }
    seen[static_cast<std::size_t>(image)] = true;
  }
  if (!label_preserving(g, perm)) return false;
  for (NodeId v = 0; v < g.n(); ++v) {
    for (const NodeId u : g.neighbours(v)) {
      if (!g.has_edge(perm[static_cast<std::size_t>(v)],
                      perm[static_cast<std::size_t>(u)])) {
        return false;
      }
    }
  }
  return true;
}

void validate_symmetry_group(const Graph& g, const SymmetryGroup& grp) {
  DAWN_CHECK_MSG(grp.sortable_classes.empty() || grp.permutations.empty(),
                 "a SymmetryGroup uses one canonical-form mode, not both");
  std::vector<bool> claimed(static_cast<std::size_t>(g.n()), false);
  for (const auto& cls : grp.sortable_classes) {
    DAWN_CHECK_MSG(cls.size() >= 2, "sortable classes have size >= 2");
    for (const NodeId v : cls) {
      DAWN_CHECK(v >= 0 && v < g.n());
      DAWN_CHECK_MSG(!claimed[static_cast<std::size_t>(v)],
                     "sortable classes must be disjoint");
      claimed[static_cast<std::size_t>(v)] = true;
    }
    // Every transposition within the class must be an automorphism; by
    // composition the whole symmetric group then is.
    std::vector<NodeId> perm(static_cast<std::size_t>(g.n()));
    for (std::size_t i = 0; i < perm.size(); ++i) {
      perm[i] = static_cast<NodeId>(i);
    }
    for (std::size_t a = 0; a < cls.size(); ++a) {
      for (std::size_t b = a + 1; b < cls.size(); ++b) {
        std::swap(perm[static_cast<std::size_t>(cls[a])],
                  perm[static_cast<std::size_t>(cls[b])]);
        DAWN_CHECK_MSG(is_automorphism(g, perm),
                       "sortable class nodes must be interchangeable");
        std::swap(perm[static_cast<std::size_t>(cls[a])],
                  perm[static_cast<std::size_t>(cls[b])]);
      }
    }
  }
  for (const auto& perm : grp.permutations) {
    DAWN_CHECK_MSG(is_automorphism(g, perm),
                   "every listed permutation must be an automorphism");
  }
}

SymmetryGroup compute_symmetry(const Graph& g) {
  SymmetryGroup twins;
  twins.sortable_classes = twin_classes(g);

  SymmetryGroup perms;
  if (g.n() >= 3 && g.is_connected()) {
    bool all_deg2 = true;
    int deg1 = 0;
    NodeId end = -1;
    bool path_shape = true;
    for (NodeId v = 0; v < g.n(); ++v) {
      const int d = g.degree(v);
      if (d != 2) all_deg2 = false;
      if (d == 1) {
        ++deg1;
        if (end < 0) end = v;
      } else if (d != 2) {
        path_shape = false;
      }
    }
    if (all_deg2) {
      perms.permutations = cycle_group(g);
    } else if (path_shape && deg1 == 2) {
      perms.permutations = line_group(g, end);
    }
  }

  // The larger group wins; ties go to sortable classes (sorting is cheaper
  // per successor than a lex-min sweep over the group).
  return perms.log_order() > twins.log_order() ? perms : twins;
}

SymmetryGroup grid_symmetry(int w, int h, bool torus,
                            const std::vector<Label>& labels) {
  DAWN_CHECK(w >= 2 && h >= 2);
  DAWN_CHECK(labels.size() == static_cast<std::size_t>(w) *
                                  static_cast<std::size_t>(h));
  const auto node = [w](int r, int c) { return static_cast<NodeId>(r * w + c); };
  const std::size_t n = labels.size();

  // Rigid motions of the (torus) grid as (r, c) maps. Transposes need a
  // square grid. The full candidate set {translation ∘ dihedral} is closed
  // under composition (a semidirect product), so the label filter below
  // yields a genuine subgroup.
  struct Motion {
    bool transpose;
    bool flip_r, flip_c;
    int dr, dc;  // translation, torus only
  };
  std::vector<Motion> motions;
  const int max_dr = torus ? h : 1;
  const int max_dc = torus ? w : 1;
  for (int dr = 0; dr < max_dr; ++dr) {
    for (int dc = 0; dc < max_dc; ++dc) {
      for (const bool transpose : {false, true}) {
        if (transpose && w != h) continue;
        for (const bool flip_r : {false, true}) {
          for (const bool flip_c : {false, true}) {
            motions.push_back({transpose, flip_r, flip_c, dr, dc});
          }
        }
      }
    }
  }

  SymmetryGroup grp;
  std::vector<NodeId> perm(n);
  for (const Motion& m : motions) {
    bool ok = true;
    for (int r = 0; r < h && ok; ++r) {
      for (int c = 0; c < w && ok; ++c) {
        int rr = m.transpose ? c : r;
        int cc = m.transpose ? r : c;
        if (m.flip_r) rr = h - 1 - rr;
        if (m.flip_c) cc = w - 1 - cc;
        if (torus) {
          rr = (rr + m.dr) % h;
          cc = (cc + m.dc) % w;
        }
        const NodeId from = node(r, c);
        const NodeId to = node(rr, cc);
        perm[static_cast<std::size_t>(from)] = to;
        ok = labels[static_cast<std::size_t>(to)] ==
             labels[static_cast<std::size_t>(from)];
      }
    }
    if (!ok || is_identity(perm)) continue;
    grp.permutations.push_back(perm);
  }
  // Small grids can realise the same node permutation through different
  // motions (e.g. a 2×2 torus); deduplicate so the lex-min sweep does not
  // re-test elements.
  std::sort(grp.permutations.begin(), grp.permutations.end());
  grp.permutations.erase(
      std::unique(grp.permutations.begin(), grp.permutations.end()),
      grp.permutations.end());
  return grp;
}

void canonicalize(const SymmetryGroup& grp, Config& c, CanonScratch& scratch) {
  if (!grp.sortable_classes.empty()) {
    for (const auto& cls : grp.sortable_classes) {
      scratch.buf.clear();
      for (const NodeId v : cls) {
        scratch.buf.push_back(c[static_cast<std::size_t>(v)]);
      }
      std::sort(scratch.buf.begin(), scratch.buf.end());
      for (std::size_t i = 0; i < cls.size(); ++i) {
        c[static_cast<std::size_t>(cls[i])] = scratch.buf[i];
      }
    }
    return;
  }
  if (grp.permutations.empty()) return;
  scratch.best = c;
  scratch.buf.resize(c.size());
  for (const auto& perm : grp.permutations) {
    for (std::size_t v = 0; v < c.size(); ++v) {
      scratch.buf[static_cast<std::size_t>(perm[v])] = c[v];
    }
    // Every index of buf was just overwritten, so swapping (rather than
    // copying) the new minimum in is safe.
    if (scratch.buf < scratch.best) scratch.best.swap(scratch.buf);
  }
  c = scratch.best;
}

}  // namespace dawn
