// Parallel trial runner: fan independent seeded simulations across threads.
//
// Statistical experiments (the Figure 1 grids, scheduler-sensitivity sweeps,
// convergence studies) are embarrassingly parallel: every (input × scheduler
// × seed) cell is an independent simulation. This module runs such cells on
// a std::thread pool while keeping results *deterministic regardless of
// thread count*:
//
//  * each trial's seed is a pure function of (base_seed, trial index) via a
//    splitmix64 mix, never of scheduling order;
//  * each trial owns its scheduler and — through the factory — its machine,
//    so lazily-interning compiled machines (whose mutable interners are not
//    thread-safe) are never shared across threads;
//  * results land in a preallocated slot indexed by trial, so the output
//    order is the trial order, not the completion order.
//
// Two layers: `run_trials` for the common N-seeded-repetitions shape, and
// `run_jobs` for heterogeneous cell grids (each job is an arbitrary closure
// returning a SimulateResult; the closure must own all mutable state it
// touches).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dawn/automata/machine.hpp"
#include "dawn/graph/graph.hpp"
#include "dawn/sched/scheduler.hpp"
#include "dawn/semantics/simulate.hpp"

namespace dawn {

// Fresh machine per trial. Called on the worker thread that owns the trial;
// must not share mutable state with other trials (compiled machines intern
// states lazily and are not thread-safe).
using MachineFactory = std::function<std::shared_ptr<const Machine>()>;

// Fresh scheduler per trial, seeded with the trial's deterministic seed.
using SchedulerFactory =
    std::function<std::unique_ptr<Scheduler>(std::uint64_t seed)>;

struct TrialOptions {
  int num_trials = 8;
  // 0 = hardware_concurrency (at least 1). The result is identical for every
  // value; threads only change wall-clock time.
  int num_threads = 0;
  std::uint64_t base_seed = 0x5eed;
  SimulateOptions sim;
};

struct TrialOutcome {
  int trial = 0;
  std::uint64_t seed = 0;
  SimulateResult result;
};

struct TrialSummary {
  int num_trials = 0;
  int converged = 0;
  int accepted = 0;  // converged with verdict Accept
  int rejected = 0;  // converged with verdict Reject
  double mean_convergence_step = 0.0;  // over converged trials
  std::uint64_t max_total_steps = 0;
  // Per-trial metrics merged in trial-index order (counters add, gauges
  // max), so the deterministic part is bit-identical for every num_threads.
  // Empty unless SimulateOptions::collect_metrics was set.
  obs::RunMetrics metrics;
};

// Deterministic per-trial seed: splitmix64 of base_seed + trial. Stable
// across platforms and thread counts; exposed so benches can label runs.
std::uint64_t trial_seed(std::uint64_t base_seed, int trial);

// Runs `opts.num_trials` independent simulations of `machine_factory()` on
// `g` under `scheduler_factory(seed_i)`. Outcomes are indexed by trial.
std::vector<TrialOutcome> run_trials(const MachineFactory& machine_factory,
                                     const Graph& g,
                                     const SchedulerFactory& scheduler_factory,
                                     const TrialOptions& opts);

// Lower-level fan-out for heterogeneous grids: runs every job on the pool,
// returning results in job order. Each job must own its machine, graph
// reference and scheduler (no shared mutable state across jobs).
std::vector<SimulateResult> run_jobs(
    std::vector<std::function<SimulateResult()>> jobs, int num_threads = 0);

TrialSummary summarize(const std::vector<TrialOutcome>& outcomes);

}  // namespace dawn
