// Parallel trial runner: fan independent seeded simulations across threads.
//
// Statistical experiments (the Figure 1 grids, scheduler-sensitivity sweeps,
// convergence studies) are embarrassingly parallel: every (input × scheduler
// × seed) cell is an independent simulation. This module runs such cells on
// a std::thread pool while keeping results *deterministic regardless of
// thread count*:
//
//  * each trial's seed is a pure function of (base_seed, trial index) via a
//    splitmix64 mix, never of scheduling order;
//  * each trial owns its scheduler and — through the factory — its machine,
//    so lazily-interning compiled machines (whose mutable interners are not
//    thread-safe) are never shared across threads;
//  * results land in a preallocated slot indexed by trial, so the output
//    order is the trial order, not the completion order.
//
// Two layers: `run_trials` for the common N-seeded-repetitions shape, and
// `run_jobs` for heterogeneous cell grids (each job is an arbitrary closure
// returning a SimulateResult; the closure must own all mutable state it
// touches).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dawn/automata/machine.hpp"
#include "dawn/graph/graph.hpp"
#include "dawn/sched/scheduler.hpp"
#include "dawn/semantics/simulate.hpp"

namespace dawn {

// A persistent team of worker threads for phased parallel algorithms (the
// level-synchronous frontier exploration, the FB-SCC partitioning). Unlike
// the one-shot fan-out below, the threads survive between run() calls, so a
// BFS with thousands of short levels pays thread start-up once, not per
// level.
//
// run(task) executes task(worker) on every worker — the calling thread
// participates as worker 0, the pool contributes workers 1..n-1 — and
// returns when all of them have finished. Calls are serialised (no
// reentrancy). With num_threads <= 1 no threads are spawned and run()
// degenerates to task(0) inline.
class WorkerPool {
 public:
  // num_threads counts the caller: a pool of 4 spawns 3 helper threads.
  // <= 0 means hardware_concurrency.
  explicit WorkerPool(int num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int num_workers() const { return static_cast<int>(helpers_.size()) + 1; }

  void run(const std::function<void(int)>& task);

 private:
  void helper_main(int worker);

  std::vector<std::thread> helpers_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* task_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t done_ = 0;
  bool stop_ = false;
};

// The worker count parallel_for actually uses for `num_jobs` jobs and a
// requested thread count (0 = hardware_concurrency, capped at the job
// count, at least 1). Exposed so callers can pre-size per-worker scratch.
int resolve_parallel_threads(int requested, std::size_t num_jobs);

// One-shot dynamic fan-out: runs job(i) for i in [0, num_jobs) on up to
// num_threads threads (0 = hardware_concurrency), handing out indices
// through an atomic cursor. Each index is executed exactly once; the job
// must own or synchronise any state it shares. Blocks until all jobs
// finish. With one thread (or one job) everything runs inline on the
// caller.
void parallel_for(std::size_t num_jobs, int num_threads,
                  const std::function<void(std::size_t)>& job);

// As above, but the job also receives the worker index in
// [0, resolve_parallel_threads(num_threads, num_jobs)) that claimed it —
// the key to per-worker reusable scratch: job(worker, i) may freely mutate
// scratch[worker], because one worker never runs two jobs concurrently.
void parallel_for(std::size_t num_jobs, int num_threads,
                  const std::function<void(int, std::size_t)>& job);

// Fresh machine per trial. Called on the worker thread that owns the trial;
// must not share mutable state with other trials (compiled machines intern
// states lazily and are not thread-safe).
using MachineFactory = std::function<std::shared_ptr<const Machine>()>;

// Fresh scheduler per trial, seeded with the trial's deterministic seed.
using SchedulerFactory =
    std::function<std::unique_ptr<Scheduler>(std::uint64_t seed)>;

// Whether run_trials may route trials through the SoA batched engine
// (semantics/batched_trials.hpp). Results are bit-identical either way —
// the batched engine is a pure optimisation, pinned by differential tests
// and the scalar-vs-batched fuzz pair.
enum class TrialBatch : std::uint8_t {
  Auto,   // batched when the (machine, scheduler, options) triple qualifies
  Off,    // always the scalar per-trial path (the differential oracle)
  Force,  // batched or DAWN_CHECK failure — for tests and benches
};

struct TrialOptions {
  int num_trials = 8;
  // 0 = hardware_concurrency (at least 1). The result is identical for every
  // value; threads only change wall-clock time.
  int num_threads = 0;
  std::uint64_t base_seed = 0x5eed;
  SimulateOptions sim;
  TrialBatch batch = TrialBatch::Auto;
  // Lanes per lockstep block for the batched engine; clamped to [8, 64].
  // Any width gives identical results (trials are seeded by index, and
  // block boundaries never leak into per-trial state).
  int batch_width = 32;
};

struct TrialOutcome {
  int trial = 0;
  std::uint64_t seed = 0;
  SimulateResult result;
};

struct TrialSummary {
  int num_trials = 0;
  int converged = 0;
  int accepted = 0;  // converged with verdict Accept
  int rejected = 0;  // converged with verdict Reject
  double mean_convergence_step = 0.0;  // over converged trials
  std::uint64_t max_total_steps = 0;
  // Per-trial metrics merged in trial-index order (counters add, gauges
  // max), so the deterministic part is bit-identical for every num_threads.
  // Empty unless SimulateOptions::collect_metrics was set.
  obs::RunMetrics metrics;
};

// Deterministic per-trial seed: splitmix64 of base_seed + trial. Stable
// across platforms and thread counts; exposed so benches can label runs.
std::uint64_t trial_seed(std::uint64_t base_seed, int trial);

// Runs `opts.num_trials` independent simulations of `machine_factory()` on
// `g` under `scheduler_factory(seed_i)`. Outcomes are indexed by trial.
std::vector<TrialOutcome> run_trials(const MachineFactory& machine_factory,
                                     const Graph& g,
                                     const SchedulerFactory& scheduler_factory,
                                     const TrialOptions& opts);

// Lower-level fan-out for heterogeneous grids: runs every job on the pool,
// returning results in job order. Each job must own its machine, graph
// reference and scheduler (no shared mutable state across jobs).
std::vector<SimulateResult> run_jobs(
    std::vector<std::function<SimulateResult()>> jobs, int num_threads = 0);

TrialSummary summarize(const std::vector<TrialOutcome>& outcomes);

}  // namespace dawn
