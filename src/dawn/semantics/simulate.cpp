#include "dawn/semantics/simulate.hpp"

#include "dawn/automata/run.hpp"
#include "dawn/util/check.hpp"

namespace dawn {

SimulateResult simulate(const Machine& machine, const Graph& g,
                        Scheduler& scheduler, const SimulateOptions& opts) {
  Run run(machine, g, opts.engine);
  SimulateResult result;
  Selection sel;  // reused across steps (select_into is allocation-free)
  while (run.steps() < opts.max_steps) {
    scheduler.select_into(g, machine, run.config(), run.steps(), sel);
    DAWN_CHECK_MSG(!sel.empty(),
                   "scheduler returned an empty selection (a no-op step "
                   "that would silently burn max_steps)");
    run.apply(sel);
    if (run.current_consensus() != Verdict::Neutral &&
        run.consensus_held_for() >= opts.stable_window) {
      result.converged = true;
      break;
    }
  }
  result.verdict = run.current_consensus();
  // One meaning for both branches: the step the final consensus was
  // established at; steps() when the run ended Neutral (consensus_held_for
  // is 0 there, so the formula degenerates correctly).
  result.convergence_step = run.steps() - run.consensus_held_for();
  result.total_steps = run.steps();
  return result;
}

}  // namespace dawn
