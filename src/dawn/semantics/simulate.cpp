#include "dawn/semantics/simulate.hpp"

#include "dawn/automata/run.hpp"

namespace dawn {

SimulateResult simulate(const Machine& machine, const Graph& g,
                        Scheduler& scheduler, const SimulateOptions& opts) {
  Run run(machine, g);
  SimulateResult result;
  while (run.steps() < opts.max_steps) {
    const Selection sel =
        scheduler.select(g, machine, run.config(), run.steps());
    run.apply(sel);
    if (run.current_consensus() != Verdict::Neutral &&
        run.consensus_held_for() >= opts.stable_window) {
      result.converged = true;
      result.verdict = run.current_consensus();
      result.convergence_step = run.steps() - run.consensus_held_for();
      result.total_steps = run.steps();
      return result;
    }
  }
  result.converged = false;
  result.verdict = run.current_consensus();
  result.convergence_step =
      run.consensus_held_for() > 0 ? run.steps() - run.consensus_held_for()
                                   : run.steps();
  result.total_steps = run.steps();
  return result;
}

}  // namespace dawn
