#include "dawn/semantics/simulate.hpp"

#include <optional>

#include "dawn/automata/run.hpp"
#include "dawn/obs/span_log.hpp"
#include "dawn/util/check.hpp"

namespace dawn {

namespace {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::Accept: return "accept";
    case Verdict::Reject: return "reject";
    case Verdict::Neutral: return "neutral";
  }
  return "?";
}

}  // namespace

SimulateResult simulate(const Machine& machine, const Graph& g,
                        Scheduler& scheduler, const SimulateOptions& opts) {
  SimulateScratch scratch;
  return simulate(machine, g, scheduler, opts, scratch);
}

SimulateResult simulate(const Machine& machine, const Graph& g,
                        Scheduler& scheduler, const SimulateOptions& opts,
                        SimulateScratch& scratch) {
  Run run(machine, g, opts.engine, std::move(scratch.run));
  SimulateResult result;
  // Install the sink for the whole run so cold-path events (interner
  // inserts, scheduler probes, engine stage timers) land in the result too.
  // The inner loop itself never touches the sink — counters are harvested
  // from the Run's plain members below.
  std::optional<obs::MetricsScope> scope;
  if (opts.collect_metrics) scope.emplace(result.metrics);
  obs::TraceLog* const trace = opts.trace;
  {
    obs::SpanScope span(obs::spans(), obs::Phase::SimulateRun);
    obs::Stopwatch watch(obs::Timer::SimulateTotal);
    if (trace != nullptr) {
      trace->run_start(static_cast<std::size_t>(g.n()),
                       opts.engine == StepEngine::Incremental ? "incremental"
                                                              : "full_copy");
    }
    Verdict traced_consensus = run.current_consensus();
    // Reused across steps (select_into is allocation-free) and, through the
    // scratch, across trials.
    Selection& sel = scratch.selection;
    while (run.steps() < opts.max_steps) {
      scheduler.select_into(g, machine, run.config(), run.steps(), sel);
      DAWN_CHECK_MSG(!sel.empty(),
                     "scheduler returned an empty selection (a no-op step "
                     "that would silently burn max_steps)");
      run.apply(sel);
      if (trace != nullptr) {
        trace->step(run.steps(), sel, run.last_step_commits());
        const Verdict now = run.current_consensus();
        if (now != traced_consensus) {
          if (now == Verdict::Neutral) {
            trace->consensus_lost(run.steps());
          } else {
            trace->consensus(run.steps(), verdict_name(now));
          }
          traced_consensus = now;
        }
      }
      if (run.current_consensus() != Verdict::Neutral &&
          run.consensus_held_for() >= opts.stable_window) {
        result.converged = true;
        break;
      }
    }
  }
  result.verdict = run.current_consensus();
  // One meaning for both branches: the step the final consensus was
  // established at; steps() when the run ended Neutral (consensus_held_for
  // is 0 there, so the formula degenerates correctly).
  result.convergence_step = run.steps() - run.consensus_held_for();
  result.total_steps = run.steps();
  if (trace != nullptr) {
    trace->run_end(run.steps(), result.converged, verdict_name(result.verdict));
  }
  if (opts.collect_metrics) {
    obs::RunMetrics& m = result.metrics;
    m.add(obs::Counter::SimRuns);
    m.add(obs::Counter::SimSteps, run.steps());
    m.add(obs::Counter::SimActivations, run.activations());
    m.add(obs::Counter::SimCommits, run.commits());
    if (result.converged) m.add(obs::Counter::SimConverged);
    m.add(obs::Counter::ConsensusEstablished, run.consensus_established());
    m.add(obs::Counter::ConsensusLost, run.consensus_lost());
    m.gauge_max(obs::Gauge::MaxSelectionSize, run.max_selection_size());
  }
  scratch.run = std::move(run).release_scratch();
  return result;
}

}  // namespace dawn
