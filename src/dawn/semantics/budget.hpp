// ExploreBudget: the one resource-limit struct shared by every decider.
//
// Before this header each decision procedure carried its own ad-hoc
// max-configs cap, so budgets could not be threaded uniformly through
// `verify` or the decide() facade, and "ran out of budget" was
// indistinguishable from a genuine Unknown. ExploreBudget unifies the caps
// (configurations, threads, wall-clock); the per-decider alias structs that
// briefly survived the migration are gone — every decider, verify, the
// dawnd service and the benches take an ExploreBudget directly.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>

namespace dawn {

struct ExploreBudget {
  // Abort with Decision::Unknown (reason ConfigCap) if more configurations
  // are reached.
  std::size_t max_configs = 2'000'000;

  // Worker threads for the parallel exploration paths. 1 = sequential (the
  // default: bit-compatible with the pre-parallel deciders); 0 = all
  // hardware threads. Machines whose step() is not thread-safe (lazily
  // interning compiled stacks) are transparently clamped to 1.
  int max_threads = 1;

  // Wall-clock deadline in milliseconds; 0 = none. Deadline aborts report
  // UnknownReason::Deadline and are OUTSIDE the determinism contract (how
  // far an exploration gets in a fixed time is machine-dependent).
  std::uint64_t deadline_ms = 0;

  // Opt-in exploration accelerators, honoured by the parallel explicit
  // engine only (the counted backends are already symmetry quotients, and
  // the sequential decider stays byte-for-byte the unreduced differential
  // reference — see docs/SYMMETRY.md).
  //
  // use_symmetry interns only canonical orbit representatives under the
  // graph's detected label-preserving automorphisms; the decision is
  // unchanged, but configs/SCC counts shrink by up to the group order.
  // use_packing stores configurations bit-packed (ceil(log2|Q|) bits per
  // node) in per-shard arenas; it needs Machine::num_states() and falls
  // back to the vector store for lazily-interning machines.
  bool use_symmetry = false;
  bool use_packing = false;

  // Out-of-core exploration (docs/ENGINE.md "Tiered store"). When both
  // max_store_bytes > 0 and spill_dir is set, the parallel explicit engine
  // swaps the in-memory packed store for the TieredConfigStore: packed
  // config words spill to unlinked files under spill_dir whenever the
  // resident footprint exceeds max_store_bytes at a level boundary, large
  // frontier levels stream through delta-encoded spill files, and every
  // edge goes to disk instead of RAM. The budget is enforced per level
  // (resident bytes may overshoot within one BFS level); if the always-
  // resident hash index alone exceeds it the run aborts with
  // UnknownReason::MemoryCap — deterministically, because level-end store
  // contents are thread-count-invariant. 0 / empty = never spill.
  std::size_t max_store_bytes = 0;
  std::string spill_dir = {};

  int resolve_threads() const {
    int t = max_threads;
    if (t <= 0) t = static_cast<int>(std::thread::hardware_concurrency());
    return t < 1 ? 1 : t;
  }

  bool operator==(const ExploreBudget&) const = default;
};

// Cheap deadline checks for exploration loops: reads the clock only when a
// deadline is actually set.
class DeadlineClock {
 public:
  explicit DeadlineClock(const ExploreBudget& budget)
      : enabled_(budget.deadline_ms > 0) {
    if (enabled_) {
      end_ = std::chrono::steady_clock::now() +
             std::chrono::milliseconds(budget.deadline_ms);
    }
  }

  bool enabled() const { return enabled_; }

  bool expired() const {
    return enabled_ && std::chrono::steady_clock::now() >= end_;
  }

  // Milliseconds until the deadline (clamped at 0); -1 when no deadline is
  // set. For progress heartbeats — wall-clock, outside the determinism
  // contract.
  std::int64_t remaining_ms() const {
    if (!enabled_) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        end_ - std::chrono::steady_clock::now());
    return left.count() < 0 ? 0 : left.count();
  }

 private:
  bool enabled_;
  std::chrono::steady_clock::time_point end_;
};

}  // namespace dawn
