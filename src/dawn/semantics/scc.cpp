#include "dawn/semantics/scc.hpp"

#include <algorithm>

namespace dawn {

SccInfo compute_sccs(const std::vector<std::vector<std::int32_t>>& adj) {
  const auto n = adj.size();
  constexpr std::int32_t kUnvisited = -1;
  SccInfo info;
  info.component.assign(n, kUnvisited);
  std::vector<std::int32_t> index(n, kUnvisited), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::int32_t> stack;
  std::int32_t next_index = 0;
  std::int32_t next_scc = 0;

  // Iterative Tarjan: an explicit call stack of (node, next child) frames.
  struct Frame {
    std::int32_t v;
    std::size_t child;
  };
  std::vector<Frame> call_stack;

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.push_back({static_cast<std::int32_t>(root), 0});
    while (!call_stack.empty()) {
      Frame& f = call_stack.back();
      const auto v = static_cast<std::size_t>(f.v);
      if (f.child == 0) {
        index[v] = low[v] = next_index++;
        stack.push_back(f.v);
        on_stack[v] = true;
      }
      bool descended = false;
      while (f.child < adj[v].size()) {
        const std::int32_t w = adj[v][f.child++];
        const auto wu = static_cast<std::size_t>(w);
        if (index[wu] == kUnvisited) {
          call_stack.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[wu]) low[v] = std::min(low[v], index[wu]);
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        while (true) {
          const std::int32_t w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          info.component[static_cast<std::size_t>(w)] = next_scc;
          if (w == f.v) break;
        }
        ++next_scc;
      }
      const std::int32_t finished = f.v;
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const auto parent = static_cast<std::size_t>(call_stack.back().v);
        low[parent] =
            std::min(low[parent], low[static_cast<std::size_t>(finished)]);
      }
    }
  }
  info.count = static_cast<std::size_t>(next_scc);
  info.is_bottom.assign(info.count, true);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::int32_t w : adj[v]) {
      if (info.component[v] != info.component[static_cast<std::size_t>(w)]) {
        info.is_bottom[static_cast<std::size_t>(info.component[v])] = false;
      }
    }
  }
  return info;
}

BottomClassification classify_bottom_sccs(
    const std::vector<std::vector<std::int32_t>>& adj,
    const std::function<Verdict(std::size_t)>& verdict_of) {
  const SccInfo info = compute_sccs(adj);
  std::vector<std::uint8_t> all_acc(info.count, 1), all_rej(info.count, 1);
  for (std::size_t v = 0; v < adj.size(); ++v) {
    const auto s = static_cast<std::size_t>(info.component[v]);
    if (!info.is_bottom[s]) continue;
    const Verdict verdict = verdict_of(v);
    if (verdict != Verdict::Accept) all_acc[s] = 0;
    if (verdict != Verdict::Reject) all_rej[s] = 0;
  }
  BottomClassification out;
  bool any_accept = false, any_reject = false, any_mixed = false;
  for (std::size_t s = 0; s < info.count; ++s) {
    if (!info.is_bottom[s]) continue;
    ++out.num_bottom_sccs;
    if (all_acc[s]) {
      any_accept = true;
    } else if (all_rej[s]) {
      any_reject = true;
    } else {
      any_mixed = true;
    }
  }
  if (any_mixed || (any_accept && any_reject)) {
    out.decision = Decision::Inconsistent;
  } else if (any_accept) {
    out.decision = Decision::Accept;
  } else {
    out.decision = Decision::Reject;
  }
  return out;
}

}  // namespace dawn
