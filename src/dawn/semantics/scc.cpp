#include "dawn/semantics/scc.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>

#include "dawn/obs/telemetry.hpp"
#include "dawn/semantics/trials.hpp"

namespace dawn {

namespace {

using Adj = std::vector<std::vector<std::int32_t>>;

constexpr std::int32_t kUnvisited = -1;

// Below this node count the parallel machinery costs more than Tarjan.
constexpr std::size_t kParallelSccThreshold = 1u << 15;

// FB subproblems below this size finish with sequential Tarjan instead of
// further pivot splits.
constexpr std::size_t kTarjanFallback = 25'000;

SccInfo compute_sccs_tarjan(const Adj& adj) {
  const auto n = adj.size();
  SccInfo info;
  info.component.assign(n, kUnvisited);
  std::vector<std::int32_t> index(n, kUnvisited), low(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::int32_t> stack;
  std::int32_t next_index = 0;
  std::int32_t next_scc = 0;

  // Iterative Tarjan: an explicit call stack of (node, next child) frames.
  struct Frame {
    std::int32_t v;
    std::size_t child;
  };
  std::vector<Frame> call_stack;

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.push_back({static_cast<std::int32_t>(root), 0});
    while (!call_stack.empty()) {
      Frame& f = call_stack.back();
      const auto v = static_cast<std::size_t>(f.v);
      if (f.child == 0) {
        index[v] = low[v] = next_index++;
        stack.push_back(f.v);
        on_stack[v] = true;
      }
      bool descended = false;
      while (f.child < adj[v].size()) {
        const std::int32_t w = adj[v][f.child++];
        const auto wu = static_cast<std::size_t>(w);
        if (index[wu] == kUnvisited) {
          call_stack.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[wu]) low[v] = std::min(low[v], index[wu]);
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        while (true) {
          const std::int32_t w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          info.component[static_cast<std::size_t>(w)] = next_scc;
          if (w == f.v) break;
        }
        ++next_scc;
      }
      const std::int32_t finished = f.v;
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const auto parent = static_cast<std::size_t>(call_stack.back().v);
        low[parent] =
            std::min(low[parent], low[static_cast<std::size_t>(finished)]);
      }
    }
  }
  info.count = static_cast<std::size_t>(next_scc);
  return info;
}

void mark_bottoms(const Adj& adj, SccInfo& info) {
  info.is_bottom.assign(info.count, true);
  for (std::size_t v = 0; v < adj.size(); ++v) {
    for (std::int32_t w : adj[v]) {
      if (info.component[v] != info.component[static_cast<std::size_t>(w)]) {
        info.is_bottom[static_cast<std::size_t>(info.component[v])] = false;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Forward–backward SCC partitioning.
//
// Shared per-node scratch is race-free without locks because the live nodes
// are partitioned into disjoint subproblems, each processed by exactly one
// worker, and a node's next subproblem is only created after its current
// one finishes. Marks use the subproblem id as an epoch, so they never need
// clearing.
// ---------------------------------------------------------------------------

struct FbTask {
  std::int32_t pid = 0;                // subproblem id; also the mark epoch
  std::vector<std::int32_t> nodes;
};

struct FbState {
  const Adj& adj;
  Adj radj;

  std::vector<std::int32_t> owner;     // live node -> current subproblem id
  std::vector<std::int32_t> fwd_mark;  // epoch == pid when reached forward
  std::vector<std::int32_t> bwd_mark;  // epoch == pid when reached backward
  std::vector<std::int32_t> index;     // Tarjan-fallback scratch
  std::vector<std::int32_t> low;
  std::vector<std::uint8_t> on_stack;  // uint8, not vector<bool>: no shared
                                       // bit-packing across workers
  std::vector<std::int32_t> component;
  std::atomic<std::int32_t> next_scc{0};
  std::atomic<std::int32_t> next_pid{0};

  std::mutex mu;
  std::condition_variable cv;
  std::deque<FbTask> queue;
  std::size_t pending = 0;  // queued + in-flight tasks

  explicit FbState(const Adj& a) : adj(a) {
    const auto n = a.size();
    radj.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
      for (std::int32_t w : a[v]) {
        radj[static_cast<std::size_t>(w)].push_back(
            static_cast<std::int32_t>(v));
      }
    }
    owner.assign(n, kUnvisited);
    fwd_mark.assign(n, kUnvisited);
    bwd_mark.assign(n, kUnvisited);
    index.assign(n, kUnvisited);
    low.assign(n, 0);
    on_stack.assign(n, 0);
    component.assign(n, kUnvisited);
  }
};

// Sequential Tarjan over the subgraph induced by owner[v] == pid; SCC ids
// come from the shared atomic counter.
void fb_tarjan(FbState& s, const FbTask& task) {
  struct Frame {
    std::int32_t v;
    std::size_t child;
  };
  std::vector<Frame> call_stack;
  std::vector<std::int32_t> stack;
  std::int32_t next_index = 0;

  for (const std::int32_t root : task.nodes) {
    if (s.index[static_cast<std::size_t>(root)] != kUnvisited) continue;
    call_stack.push_back({root, 0});
    while (!call_stack.empty()) {
      Frame& f = call_stack.back();
      const auto v = static_cast<std::size_t>(f.v);
      if (f.child == 0) {
        s.index[v] = s.low[v] = next_index++;
        stack.push_back(f.v);
        s.on_stack[v] = 1;
      }
      bool descended = false;
      while (f.child < s.adj[v].size()) {
        const std::int32_t w = s.adj[v][f.child++];
        const auto wu = static_cast<std::size_t>(w);
        if (s.owner[wu] != task.pid) continue;  // other subproblem / trimmed
        if (s.index[wu] == kUnvisited) {
          call_stack.push_back({w, 0});
          descended = true;
          break;
        }
        if (s.on_stack[wu]) s.low[v] = std::min(s.low[v], s.index[wu]);
      }
      if (descended) continue;
      if (s.low[v] == s.index[v]) {
        const std::int32_t scc = s.next_scc.fetch_add(1);
        while (true) {
          const std::int32_t w = stack.back();
          stack.pop_back();
          s.on_stack[static_cast<std::size_t>(w)] = 0;
          s.component[static_cast<std::size_t>(w)] = scc;
          if (w == f.v) break;
        }
      }
      const std::int32_t finished = f.v;
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const auto parent = static_cast<std::size_t>(call_stack.back().v);
        s.low[parent] =
            std::min(s.low[parent], s.low[static_cast<std::size_t>(finished)]);
      }
    }
  }
}

// BFS within the task's subproblem along `edges` (adj or radj), setting
// `mark[v] = task.pid`. Returns the reached nodes.
std::vector<std::int32_t> fb_reach(FbState& s, const FbTask& task,
                                   const Adj& edges,
                                   std::vector<std::int32_t>& mark,
                                   std::int32_t pivot) {
  std::vector<std::int32_t> reached{pivot};
  mark[static_cast<std::size_t>(pivot)] = task.pid;
  for (std::size_t head = 0; head < reached.size(); ++head) {
    const auto v = static_cast<std::size_t>(reached[head]);
    for (const std::int32_t w : edges[v]) {
      const auto wu = static_cast<std::size_t>(w);
      if (s.owner[wu] != task.pid || mark[wu] == task.pid) continue;
      mark[wu] = task.pid;
      reached.push_back(w);
    }
  }
  return reached;
}

// One FB step: SCC(pivot) = F ∩ B; recurse on F\S, B\S, and the rest.
void fb_split(FbState& s, const FbTask& task, std::vector<FbTask>& children) {
  const std::int32_t pivot = task.nodes.front();
  fb_reach(s, task, s.adj, s.fwd_mark, pivot);
  fb_reach(s, task, s.radj, s.bwd_mark, pivot);

  const std::int32_t scc = s.next_scc.fetch_add(1);
  FbTask fwd_only, bwd_only, rest;
  for (const std::int32_t v : task.nodes) {
    const auto vu = static_cast<std::size_t>(v);
    const bool in_f = s.fwd_mark[vu] == task.pid;
    const bool in_b = s.bwd_mark[vu] == task.pid;
    if (in_f && in_b) {
      s.component[vu] = scc;
    } else if (in_f) {
      fwd_only.nodes.push_back(v);
    } else if (in_b) {
      bwd_only.nodes.push_back(v);
    } else {
      rest.nodes.push_back(v);
    }
  }
  for (FbTask* child : {&fwd_only, &bwd_only, &rest}) {
    if (child->nodes.empty()) continue;
    child->pid = s.next_pid.fetch_add(1);
    for (const std::int32_t v : child->nodes) {
      s.owner[static_cast<std::size_t>(v)] = child->pid;
    }
    children.push_back(std::move(*child));
  }
}

void fb_worker(FbState& s) {
  std::vector<FbTask> children;
  for (;;) {
    FbTask task;
    {
      std::unique_lock<std::mutex> lock(s.mu);
      s.cv.wait(lock, [&] { return !s.queue.empty() || s.pending == 0; });
      if (s.queue.empty()) return;  // pending == 0: all work finished
      task = std::move(s.queue.front());
      s.queue.pop_front();
    }
    children.clear();
    if (task.nodes.size() <= kTarjanFallback) {
      fb_tarjan(s, task);
    } else {
      fb_split(s, task, children);
    }
    {
      std::lock_guard<std::mutex> lock(s.mu);
      for (auto& child : children) {
        s.queue.push_back(std::move(child));
        ++s.pending;
      }
      --s.pending;
    }
    s.cv.notify_all();
  }
}

SccInfo compute_sccs_parallel(const Adj& adj, int threads) {
  const auto n = adj.size();
  const obs::Telemetry tel = obs::telemetry();
  FbState s(adj);

  // Trim: a node with no in-edges (or no out-edges) among the still-live
  // nodes cannot lie on a cycle, so it is a singleton SCC. Monotone
  // protocols produce near-DAG configuration graphs, so this peel usually
  // resolves most of the graph in O(V+E) before any pivoting.
  std::vector<std::uint8_t> trimmed(n, 0);
  {
    obs::SpanScope trim_span(tel.spans, obs::Phase::ExploreSccTrim, n);
    std::vector<std::int32_t> in_deg(n, 0), out_deg(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      out_deg[v] = static_cast<std::int32_t>(adj[v].size());
      for (const std::int32_t w : adj[v]) {
        ++in_deg[static_cast<std::size_t>(w)];
      }
    }
    std::vector<std::int32_t> peel;
    for (std::size_t v = 0; v < n; ++v) {
      if (in_deg[v] == 0 || out_deg[v] == 0) {
        trimmed[v] = 1;
        peel.push_back(static_cast<std::int32_t>(v));
      }
    }
    std::int32_t trimmed_sccs = 0;
    while (!peel.empty()) {
      const auto v = static_cast<std::size_t>(peel.back());
      peel.pop_back();
      s.component[v] = trimmed_sccs++;
      for (const std::int32_t w : adj[v]) {
        const auto wu = static_cast<std::size_t>(w);
        if (!trimmed[wu] && --in_deg[wu] == 0) {
          trimmed[wu] = 1;
          peel.push_back(w);
        }
      }
      for (const std::int32_t w : s.radj[v]) {
        const auto wu = static_cast<std::size_t>(w);
        if (!trimmed[wu] && --out_deg[wu] == 0) {
          trimmed[wu] = 1;
          peel.push_back(w);
        }
      }
    }
    s.next_scc.store(trimmed_sccs, std::memory_order_relaxed);
  }

  FbTask root;
  for (std::size_t v = 0; v < n; ++v) {
    if (!trimmed[v]) root.nodes.push_back(static_cast<std::int32_t>(v));
  }
  if (!root.nodes.empty()) {
    root.pid = s.next_pid.fetch_add(1);
    for (const std::int32_t v : root.nodes) {
      s.owner[static_cast<std::size_t>(v)] = root.pid;
    }
    const std::size_t live = root.nodes.size();
    s.queue.push_back(std::move(root));
    s.pending = 1;
    obs::SpanScope fb_span(tel.spans, obs::Phase::ExploreSccFb, live);
    WorkerPool pool(threads);
    pool.run([&s, tel](int) {
      const obs::TelemetryScope telemetry_scope(tel);
      fb_worker(s);
    });
  }

  SccInfo info;
  info.component = std::move(s.component);
  info.count =
      static_cast<std::size_t>(s.next_scc.load(std::memory_order_relaxed));
  return info;
}

}  // namespace

SccInfo compute_sccs(const Adj& adj, int max_threads) {
  SccInfo info = (max_threads > 1 && adj.size() >= kParallelSccThreshold)
                     ? compute_sccs_parallel(adj, max_threads)
                     : compute_sccs_tarjan(adj);
  mark_bottoms(adj, info);
  return info;
}

BottomClassification classify_bottom_sccs(
    const Adj& adj, const std::function<Verdict(std::size_t)>& verdict_of,
    int max_threads) {
  const SccInfo info = compute_sccs(adj, max_threads);
  std::vector<std::uint8_t> all_acc(info.count, 1), all_rej(info.count, 1);
  for (std::size_t v = 0; v < adj.size(); ++v) {
    const auto s = static_cast<std::size_t>(info.component[v]);
    if (!info.is_bottom[s]) continue;
    const Verdict verdict = verdict_of(v);
    if (verdict != Verdict::Accept) all_acc[s] = 0;
    if (verdict != Verdict::Reject) all_rej[s] = 0;
  }
  BottomClassification out;
  bool any_accept = false, any_reject = false, any_mixed = false;
  for (std::size_t s = 0; s < info.count; ++s) {
    if (!info.is_bottom[s]) continue;
    ++out.num_bottom_sccs;
    if (all_acc[s]) {
      any_accept = true;
    } else if (all_rej[s]) {
      any_reject = true;
    } else {
      any_mixed = true;
    }
  }
  if (any_mixed || (any_accept && any_reject)) {
    out.decision = Decision::Inconsistent;
  } else if (any_accept) {
    out.decision = Decision::Accept;
  } else {
    out.decision = Decision::Reject;
  }
  return out;
}

}  // namespace dawn
