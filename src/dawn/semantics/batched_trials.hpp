// SoA batched trial engine: step 8–64 trials in lockstep (docs/ENGINE.md).
//
// The scalar trial runner simulates one trial at a time: every activation
// builds a sparse Neighbourhood and calls δ through a std::function. When the
// machine is enumerable (num_states() known, β small), δ restricted to one
// graph is a finite function of (state, capped neighbour-count signature) —
// so a block of W independent trials can share every scheduler draw's control
// flow and run δ as a memoized table lookup over a structure-of-arrays
// configuration:
//
//     soa[v * stride + lane]  — node v's state in trial `lane` (uint8)
//
// All lanes of a block share ONE step counter. A lane that converges retires
// from the active list (active-lane compaction) and is never stepped again —
// exactly where its scalar run would have stopped — so per-lane results are a
// pure function of (base_seed, trial index), bit-identical to the scalar
// path for every batch width and thread count. The scalar path remains the
// differential oracle (tests/test_batched_trials.cpp and the fuzz pair
// `scalar-vs-batched` pin the equivalence).
//
// Per-node signature kernels are hand-rolled AVX2 behind runtime dispatch
// (util/simd.hpp); the scalar fallback is mandatory and bit-identical.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dawn/graph/graph.hpp"
#include "dawn/semantics/trials.hpp"

namespace dawn {

// The lane width a TrialOptions resolves to: batch_width clamped to [8, 64].
int batched_lane_width(const TrialOptions& opts);

// Why the (machine, scheduler, options) triple cannot take the batched path,
// or the empty string if it qualifies. Probes the factories once (one
// machine, one scheduler for trial 0). Qualification requires: non-empty
// graph, no trace sink, the incremental engine, a parallel-step-safe
// enumerable machine with num_states in [1, 32] and β in [1, 8], a signature
// space that fits the memo table, initial states in range, and a scheduler
// family with a lockstep form (see make_batch_scheduler).
std::string batched_trials_disqualifier(const MachineFactory& machine_factory,
                                        const Graph& g,
                                        const SchedulerFactory& scheduler_factory,
                                        const TrialOptions& opts);

// Runs the trials through the batched engine, or nullopt if the triple does
// not qualify (the caller falls back to the scalar path). On success the
// outcomes are indexed by trial and bit-identical — per-trial results and
// the deterministic part of the metrics — to the scalar run_trials.
// Requires what run_trials already requires: the factories are deterministic
// (every call yields a behaviourally identical machine / an identically
// seeded scheduler), which also lets one worker's δ table persist across its
// blocks.
std::optional<std::vector<TrialOutcome>> try_run_trials_batched(
    const MachineFactory& machine_factory, const Graph& g,
    const SchedulerFactory& scheduler_factory, const TrialOptions& opts);

}  // namespace dawn
