// The unified decider facade: one entry point over every backend.
#include "dawn/semantics/decision.hpp"

#include "dawn/obs/telemetry.hpp"
#include "dawn/sched/scheduler.hpp"
#include "dawn/semantics/budget.hpp"
#include "dawn/semantics/clique_counted.hpp"
#include "dawn/semantics/explicit_space.hpp"
#include "dawn/semantics/parallel_explore.hpp"
#include "dawn/semantics/simulate.hpp"
#include "dawn/semantics/star_counted.hpp"
#include "dawn/semantics/sync_run.hpp"
#include "dawn/util/check.hpp"

namespace dawn {
namespace {

bool is_clique(const Graph& g) {
  for (NodeId v = 0; v < g.n(); ++v) {
    if (g.degree(v) != g.n() - 1) return false;
  }
  return true;
}

// The unique hub adjacent to every other node, all of which are leaves; -1
// if the graph is not a star. Cliques are dispatched before stars, so the
// degenerate overlaps (K2, the 3-path) resolve to the cheaper counted
// backend either way.
NodeId star_hub(const Graph& g) {
  NodeId hub = -1;
  for (NodeId v = 0; v < g.n(); ++v) {
    if (g.degree(v) == g.n() - 1) {
      if (hub >= 0) return -1;
      hub = v;
    } else if (g.degree(v) != 1) {
      return -1;
    }
  }
  return hub;
}

DecideMethod resolve_auto(const Graph& g) {
  // Counted semantics quotient the configuration space by node symmetry, so
  // prefer them whenever the topology allows; everything else goes to the
  // sharded explicit engine.
  if (is_clique(g)) return DecideMethod::CountedClique;
  if (star_hub(g) >= 0) return DecideMethod::CountedStar;
  return DecideMethod::Explicit;
}

constexpr bool is_exhaustion(UnknownReason r) {
  return r == UnknownReason::ConfigCap || r == UnknownReason::Deadline ||
         r == UnknownReason::StepCap || r == UnknownReason::Inconclusive ||
         r == UnknownReason::MemoryCap;
}

// Differential agreement between the parallel engine and its sequential
// reference. Capped runs agree on (decision, reason) only: the parallel
// engine clamps its count to the cap while the sequential decider reports
// how far it got.
template <typename ParResult, typename SeqResult>
bool agrees(const ParResult& par, const SeqResult& seq) {
  if (par.decision != seq.decision || par.reason != seq.reason) return false;
  if (par.decision == Decision::Unknown) return true;
  return par.num_configs == seq.num_configs &&
         par.num_bottom_sccs == seq.num_bottom_sccs;
}

template <typename Result>
void fill(DecisionReport& report, const Result& r) {
  report.decision = r.decision;
  report.unknown_reason = r.reason;
  report.configs_explored = r.num_configs;
  report.num_bottom_sccs = r.num_bottom_sccs;
}

void flag_cross_check_failure(DecisionReport& report) {
  report.decision = Decision::Unknown;
  report.unknown_reason = UnknownReason::CrossCheck;
}

}  // namespace

DecisionReport decide(const Machine& machine, const Graph& g,
                      const DecisionRequest& request) {
  DecideMethod method = request.method;
  if (method == DecideMethod::Auto) method = resolve_auto(g);

  DecisionReport report;
  report.method = method;

  // Route the backends' memory accounting into this report's ledger,
  // unconditionally: the ledger is part of the report, so it must be filled
  // identically whether or not external telemetry (spans, heartbeats) is
  // attached. Spans/progress pass through from the caller's ambient bundle.
  obs::Telemetry tel = obs::telemetry();
  tel.ledger = &report.memory;
  const obs::TelemetryScope telemetry_scope(tel);
  const obs::SpanScope decide_span(tel.spans, obs::Phase::DecideTotal);

  switch (method) {
    case DecideMethod::Auto:
      DAWN_CHECK_MSG(false, "Auto resolves before dispatch");
      break;

    case DecideMethod::Explicit: {
      const ExplicitResult r =
          decide_pseudo_stochastic_parallel(machine, g, request.budget);
      fill(report, r);
      report.symmetry_reduced = r.symmetry_reduced;
      report.packed_store = r.packed_store;
      if (request.cross_check) {
        const ExplicitResult seq =
            decide_pseudo_stochastic(machine, g, request.budget);
        // A symmetry-reduced run counts orbits, so only the decision (and
        // Unknown reason) is comparable against the unreduced sequential
        // reference; unreduced runs must match counts too.
        const bool agree =
            r.symmetry_reduced
                ? (r.decision == seq.decision && r.reason == seq.reason)
                : agrees(r, seq);
        if (!agree) flag_cross_check_failure(report);
      }
      break;
    }

    case DecideMethod::ExplicitLiberal: {
      fill(report, decide_pseudo_stochastic_liberal(machine, g,
                                                    request.budget));
      break;
    }

    case DecideMethod::CountedClique: {
      DAWN_CHECK_MSG(is_clique(g), "CountedClique needs a clique input");
      const LabelCount L = g.label_count(machine.num_labels());
      const CliqueResult r =
          decide_clique_pseudo_stochastic_parallel(machine, L, request.budget);
      fill(report, r);
      if (request.cross_check &&
          !agrees(r, decide_clique_pseudo_stochastic(machine, L,
                                                     request.budget))) {
        flag_cross_check_failure(report);
      }
      break;
    }

    case DecideMethod::CountedStar: {
      const NodeId hub = star_hub(g);
      DAWN_CHECK_MSG(hub >= 0, "CountedStar needs a star input");
      std::vector<Label> leaves;
      leaves.reserve(static_cast<std::size_t>(g.n()) - 1);
      for (NodeId v = 0; v < g.n(); ++v) {
        if (v != hub) leaves.push_back(g.label(v));
      }
      const StarResult r = decide_star_pseudo_stochastic_parallel(
          machine, g.label(hub), leaves, request.budget);
      fill(report, r);
      if (request.cross_check &&
          !agrees(r, decide_star_pseudo_stochastic(machine, g.label(hub),
                                                   leaves, request.budget))) {
        flag_cross_check_failure(report);
      }
      break;
    }

    case DecideMethod::Synchronous: {
      const SyncResult r = decide_synchronous(machine, g, request.budget);
      report.decision = r.decision;
      report.unknown_reason = r.reason;
      if (r.decision != Decision::Unknown) {
        report.configs_explored = r.prefix_length + r.cycle_length;
      } else if (r.reason == UnknownReason::StepCap) {
        // Clamped like the explicit engines' capped counts.
        report.configs_explored = request.budget.max_configs;
      }
      break;
    }

    case DecideMethod::Simulate: {
      RandomExclusiveScheduler scheduler(request.sim_seed);
      SimulateOptions opts;
      opts.max_steps = request.sim_max_steps;
      opts.stable_window = request.sim_stable_window;
      const SimulateResult r = simulate(machine, g, scheduler, opts);
      report.exact = false;
      report.configs_explored = static_cast<std::size_t>(r.total_steps);
      if (r.converged && r.verdict == Verdict::Accept) {
        report.decision = Decision::Accept;
      } else if (r.converged && r.verdict == Verdict::Reject) {
        report.decision = Decision::Reject;
      } else {
        report.decision = Decision::Unknown;
        report.unknown_reason = UnknownReason::Inconclusive;
      }
      break;
    }
  }

  // Interner accounting: lazily-interning compilation layers report their
  // interned-state counts through Machine::footprint(). Such machines are
  // clamped to one exploration worker (explore_threads), so the counts —
  // and hence this account — are thread-count-invariant. Plain machines
  // append nothing and the account stays empty. The per-state cost is a
  // nominal estimate (vector slot + hash node), like the stores' bytes().
  {
    constexpr std::size_t kBytesPerInternedState = 64;
    std::vector<LayerFootprint> layers;
    machine.footprint(layers);
    std::size_t states = 0;
    for (const auto& layer : layers) states += layer.interned_states;
    if (states > 0) {
      report.memory.set_max(obs::MemoryAccount::InternerBytes,
                            states * kBytesPerInternedState);
    }
  }

  report.budget_exhausted = is_exhaustion(report.unknown_reason);
  return report;
}

}  // namespace dawn
