// Exact pseudo-stochastic semantics by explicit-state exploration.
//
// On a finite configuration space, a pseudo-stochastic run visits infinitely
// often exactly the configurations of one *bottom* SCC of the reachability
// graph (the argument of Lemma B.12: every configuration reachable
// infinitely often is reached infinitely often, so the infinitely-visited
// set is closed under successors and mutually reachable). Hence:
//
//   * the automaton accepts G   iff every reachable bottom SCC is uniformly
//     accepting,
//   * rejects G                 iff every reachable bottom SCC is uniformly
//     rejecting,
//   * violates consistency      otherwise (some fair run does not stabilise
//     to the same consensus as the others).
//
// Exploration uses exclusive selection (one node per step); by the main
// result of [16] (Esparza & Reiter, CONCUR 2020) the selection mode does not
// affect the decision power, and all of the paper's constructions are stated
// for exclusive selection.
#pragma once

#include <cstddef>

#include "dawn/automata/machine.hpp"
#include "dawn/graph/graph.hpp"
#include "dawn/semantics/budget.hpp"
#include "dawn/semantics/decision.hpp"

namespace dawn {

struct ExplicitResult {
  Decision decision = Decision::Unknown;
  // Why decision == Unknown (budget cap vs deadline); None otherwise. Capped
  // runs used to be indistinguishable from genuine unknowns.
  UnknownReason reason = UnknownReason::None;
  std::size_t num_configs = 0;   // configurations explored
  std::size_t num_bottom_sccs = 0;
  // Whether the parallel engine interned canonical orbit representatives
  // (budget.use_symmetry and the graph had a nontrivial automorphism group)
  // and whether the bit-packed store was used (budget.use_packing and the
  // machine advertises num_states()). When symmetry_reduced is set,
  // num_configs / num_bottom_sccs count orbits, not raw configurations —
  // the decision is unchanged (docs/SYMMETRY.md). Always false for the
  // sequential decider.
  bool symmetry_reduced = false;
  bool packed_store = false;
  // Whether the tiered out-of-core store ran (budget.max_store_bytes > 0,
  // budget.spill_dir set, and the spill files opened). When the spill dir is
  // unusable the engine warns and falls back to the in-memory store, leaving
  // this false. Tiered runs are always packed (the spillable arena is the
  // PackedCodec word stream), so tiered_store implies packed_store.
  bool tiered_store = false;
};

ExplicitResult decide_pseudo_stochastic(const Machine& machine, const Graph& g,
                                        const ExploreBudget& opts = {});

struct ExploreStats;
struct SymmetryGroup;

// The frontier-parallel sharded engine (semantics/parallel_explore.hpp) on
// the same exclusive-selection semantics. The result is bit-identical for
// every budget.max_threads, and matches decide_pseudo_stochastic exactly on
// every run that completes; on capped runs both return
// Unknown/ConfigCap, but this engine clamps num_configs to the cap (the
// sequential decider reports how far it happened to get). The sequential
// decider above stays as the differential reference. Machines without
// parallel_step_safe() are clamped to one worker.
//
// budget.use_symmetry / budget.use_packing opt into orbit-canonical
// interning and the bit-packed store (semantics/symmetry.hpp,
// semantics/packed_config.hpp). With symmetry on, the engine quotients the
// configuration graph: the decision still matches the sequential reference,
// but num_configs / num_bottom_sccs count orbits. `symmetry` overrides the
// detected group (e.g. the closed-form grid_symmetry(); validated before
// use); nullptr means compute_symmetry(g).
ExplicitResult decide_pseudo_stochastic_parallel(
    const Machine& machine, const Graph& g, const ExploreBudget& b = {},
    ExploreStats* stats = nullptr, const SymmetryGroup* symmetry = nullptr);

// The same decision under LIBERAL selection: every nonempty subset of nodes
// is a permitted selection, evaluated simultaneously. Exponential in |V| per
// configuration — for tiny graphs only. By [16] the decision power is
// selection-independent; this decider lets the repository check that
// theorem empirically on concrete automata (consistent automata must get
// the same verdict from both deciders).
ExplicitResult decide_pseudo_stochastic_liberal(const Machine& machine,
                                                const Graph& g,
                                                const ExploreBudget& o = {});

}  // namespace dawn
