#include "dawn/semantics/sync_run.hpp"

#include <numeric>
#include <unordered_map>
#include <vector>

#include "dawn/automata/config.hpp"
#include "dawn/semantics/parallel_explore.hpp"
#include "dawn/semantics/trials.hpp"
#include "dawn/util/hash.hpp"

namespace dawn {

SyncResult decide_synchronous(const Machine& machine, const Graph& g,
                              std::uint64_t max_steps) {
  return decide_synchronous(
      machine, g,
      ExploreBudget{.max_configs = static_cast<std::size_t>(max_steps),
                    .max_threads = 1,
                    .deadline_ms = 0});
}

SyncResult decide_synchronous(const Machine& machine, const Graph& g,
                              const ExploreBudget& budget) {
  SyncResult result;
  std::unordered_map<Config, std::uint64_t, VectorHash<State>> seen;
  std::vector<Config> trace;
  const std::uint64_t max_steps = budget.max_configs;
  DeadlineClock deadline(budget);

  // Splitting a synchronous step across workers only pays off when the
  // per-step work (n neighbourhood evaluations) dwarfs the barrier cost.
  const int threads =
      g.n() >= 256 ? explore_threads(machine, budget) : 1;
  WorkerPool pool(threads);
  const auto num_workers = static_cast<std::size_t>(pool.num_workers());
  std::vector<Neighbourhood> scratch(num_workers);

  const auto n = static_cast<std::size_t>(g.n());
  Config current = initial_config(machine, g);
  Config next(n);
  for (std::uint64_t t = 0; t <= max_steps; ++t) {
    auto it = seen.find(current);
    if (it != seen.end()) {
      result.prefix_length = it->second;
      result.cycle_length = t - it->second;
      bool all_acc = true, all_rej = true;
      for (std::uint64_t i = it->second; i < t; ++i) {
        if (!is_accepting(machine, trace[i])) all_acc = false;
        if (!is_rejecting(machine, trace[i])) all_rej = false;
      }
      if (all_acc) {
        result.decision = Decision::Accept;
      } else if (all_rej) {
        result.decision = Decision::Reject;
      } else {
        result.decision = Decision::Inconsistent;
      }
      return result;
    }
    if (deadline.enabled() && deadline.expired()) {
      result.decision = Decision::Unknown;
      result.reason = UnknownReason::Deadline;
      return result;
    }
    seen.emplace(current, t);
    trace.push_back(current);
    // Synchronous successor: every node steps on `current`'s
    // neighbourhoods. Workers own disjoint node ranges of `next`.
    pool.run([&](int worker) {
      const auto w = static_cast<std::size_t>(worker);
      const std::size_t begin = n * w / num_workers;
      const std::size_t end = n * (w + 1) / num_workers;
      Neighbourhood& nb = scratch[w];
      for (std::size_t v = begin; v < end; ++v) {
        Neighbourhood::of_into(g, current, static_cast<NodeId>(v),
                               machine.beta(), nb);
        next[v] = machine.step(current[v], nb);
      }
    });
    current = next;
  }
  result.decision = Decision::Unknown;
  result.reason = UnknownReason::StepCap;
  return result;
}

}  // namespace dawn
