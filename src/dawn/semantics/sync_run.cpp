#include "dawn/semantics/sync_run.hpp"

#include <numeric>
#include <unordered_map>
#include <vector>

#include "dawn/automata/config.hpp"
#include "dawn/util/hash.hpp"

namespace dawn {

SyncResult decide_synchronous(const Machine& machine, const Graph& g,
                              std::uint64_t max_steps) {
  SyncResult result;
  std::unordered_map<Config, std::uint64_t, VectorHash<State>> seen;
  std::vector<Config> trace;

  Selection all(static_cast<std::size_t>(g.n()));
  std::iota(all.begin(), all.end(), 0);

  Config current = initial_config(machine, g);
  for (std::uint64_t t = 0; t <= max_steps; ++t) {
    auto it = seen.find(current);
    if (it != seen.end()) {
      result.prefix_length = it->second;
      result.cycle_length = t - it->second;
      bool all_acc = true, all_rej = true;
      for (std::uint64_t i = it->second; i < t; ++i) {
        if (!is_accepting(machine, trace[i])) all_acc = false;
        if (!is_rejecting(machine, trace[i])) all_rej = false;
      }
      if (all_acc) {
        result.decision = Decision::Accept;
      } else if (all_rej) {
        result.decision = Decision::Reject;
      } else {
        result.decision = Decision::Inconsistent;
      }
      return result;
    }
    seen.emplace(current, t);
    trace.push_back(current);
    current = successor(machine, g, current, all);
  }
  result.decision = Decision::Unknown;
  return result;
}

}  // namespace dawn
