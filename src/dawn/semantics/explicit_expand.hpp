// Per-worker successor generators for the explicit-state engines.
//
// Shared by the in-process parallel decider (semantics/explicit_space.cpp)
// and the distributed frontier engine (net/dist_explore.cpp): both must
// enumerate successors of a configuration under exclusive selection with
// exactly the same emit sequence, or their reachable sets (and reports)
// would diverge.
#pragma once

#include "dawn/automata/config.hpp"
#include "dawn/automata/machine.hpp"
#include "dawn/graph/graph.hpp"
#include "dawn/obs/span_log.hpp"
#include "dawn/semantics/symmetry.hpp"

namespace dawn {

// Exclusive selection, silent steps skipped, scratch reused across calls.
struct ExplicitExpander {
  const Machine& machine;
  const Graph& g;
  Neighbourhood nb;
  Config scratch;

  template <typename Emit>
  void operator()(const Config& current, Emit&& emit) {
    scratch = current;
    for (NodeId v = 0; v < g.n(); ++v) {
      const auto vu = static_cast<std::size_t>(v);
      Neighbourhood::of_into(g, current, v, machine.beta(), nb);
      const State s = machine.step(current[vu], nb);
      if (s == current[vu]) continue;  // silent
      scratch[vu] = s;
      emit(scratch);
      scratch[vu] = current[vu];
    }
  }
};

// ExplicitExpander followed by orbit canonicalisation: every emitted
// successor is mapped to its orbit's canonical representative, so the engine
// explores the quotient of the configuration graph by the symmetry group.
// Edges between orbits are preserved (an automorphism commutes with the step
// relation — symmetry.hpp); orbit-internal moves become self-loops, which
// the bottom-SCC classification already ignores.
struct CanonExplicitExpander {
  const Machine& machine;
  const Graph& g;
  const SymmetryGroup& grp;
  Neighbourhood nb = {};
  Config scratch = {};
  Config emit_buf = {};
  CanonScratch canon = {};

  template <typename Emit>
  void operator()(const Config& current, Emit&& emit) {
    // One span per expansion (not per successor): canonicalisation is the
    // dominant cost of the quotient engine, and per-successor spans would
    // flood the bounded per-thread buffers.
    obs::SpanScope span(obs::spans(), obs::Phase::Canonicalize);
    scratch = current;
    for (NodeId v = 0; v < g.n(); ++v) {
      const auto vu = static_cast<std::size_t>(v);
      Neighbourhood::of_into(g, current, v, machine.beta(), nb);
      const State s = machine.step(current[vu], nb);
      if (s == current[vu]) continue;  // silent
      scratch[vu] = s;
      emit_buf = scratch;
      canonicalize(grp, emit_buf, canon);
      emit(emit_buf);
      span.add_items(1);
      scratch[vu] = current[vu];
    }
  }
};

}  // namespace dawn
