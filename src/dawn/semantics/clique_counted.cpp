#include "dawn/semantics/clique_counted.hpp"

#include <algorithm>

#include "dawn/semantics/parallel_explore.hpp"
#include "dawn/semantics/scc.hpp"
#include "dawn/util/check.hpp"
#include "dawn/util/hash.hpp"
#include "dawn/util/interner.hpp"

namespace dawn {
namespace {

// Per-worker successor generator for the parallel engine.
struct CountedExpander {
  const Machine& machine;
  template <typename Emit>
  void operator()(const CountedConfig& current, Emit&& emit) {
    for (auto [q, n] : current) {
      const CountedConfig next = counted_successor(machine, current, q);
      if (next == current) continue;  // silent
      emit(next);
    }
  }
};

Verdict counted_consensus(const Machine& machine, const CountedConfig& c) {
  DAWN_CHECK(!c.empty());
  const Verdict first = machine.verdict(c.front().first);
  for (auto [q, n] : c) {
    if (machine.verdict(q) != first) return Verdict::Neutral;
  }
  return first;
}

void add_count(CountedConfig& c, State q, std::int64_t delta) {
  auto it = std::lower_bound(
      c.begin(), c.end(), q,
      [](const std::pair<State, std::int64_t>& e, State s) {
        return e.first < s;
      });
  if (it != c.end() && it->first == q) {
    it->second += delta;
    DAWN_CHECK(it->second >= 0);
    if (it->second == 0) c.erase(it);
  } else {
    DAWN_CHECK(delta > 0);
    c.insert(it, {q, delta});
  }
}

}  // namespace

CountedConfig initial_counted_config(const Machine& machine,
                                     const LabelCount& L) {
  CountedConfig c;
  for (std::size_t l = 0; l < L.size(); ++l) {
    if (L[l] == 0) continue;
    add_count(c, machine.init(static_cast<Label>(l)), L[l]);
  }
  DAWN_CHECK_MSG(!c.empty(), "empty population");
  return c;
}

CountedConfig counted_successor(const Machine& machine,
                                const CountedConfig& config, State q) {
  // Neighbourhood of the stepping agent: everyone else in the clique.
  std::vector<std::pair<State, int>> counts;
  counts.reserve(config.size());
  bool found = false;
  for (auto [s, n] : config) {
    std::int64_t c = n;
    if (s == q) {
      DAWN_CHECK(n >= 1);
      c -= 1;  // the agent does not see itself
      found = true;
    }
    if (c > 0) {
      counts.emplace_back(
          s, static_cast<int>(std::min<std::int64_t>(c, machine.beta())));
    }
  }
  DAWN_CHECK_MSG(found, "no agent in the given state");
  const auto nb = Neighbourhood::from_counts(counts, machine.beta());
  const State next = machine.step(q, nb);
  CountedConfig out = config;
  if (next != q) {
    add_count(out, q, -1);
    add_count(out, next, +1);
  }
  return out;
}

CliqueResult decide_clique_pseudo_stochastic(const Machine& machine,
                                             const LabelCount& L,
                                             const ExploreBudget& opts) {
  CliqueResult result;
  Interner<CountedConfig, CountedConfigHash> configs;
  std::vector<std::vector<std::int32_t>> adj;
  DeadlineClock deadline(opts);

  configs.id(initial_counted_config(machine, L));
  adj.emplace_back();

  for (std::size_t head = 0; head < configs.size(); ++head) {
    if (configs.size() > opts.max_configs) {
      result.decision = Decision::Unknown;
      result.reason = UnknownReason::ConfigCap;
      result.num_configs = configs.size();
      return result;
    }
    if (deadline.enabled() && (head & 1023) == 0 && deadline.expired()) {
      result.decision = Decision::Unknown;
      result.reason = UnknownReason::Deadline;
      result.num_configs = configs.size();
      return result;
    }
    const CountedConfig current =
        configs.value(static_cast<std::int32_t>(head));
    for (auto [q, n] : current) {
      const CountedConfig next = counted_successor(machine, current, q);
      if (next == current) continue;  // silent
      const std::size_t before = configs.size();
      const std::int32_t id = configs.id(next);
      if (configs.size() > before) adj.emplace_back();
      adj[head].push_back(id);
    }
  }
  result.num_configs = configs.size();

  const BottomClassification cls = classify_bottom_sccs(
      adj, [&](std::size_t i) {
        return counted_consensus(machine,
                                 configs.value(static_cast<std::int32_t>(i)));
      });
  result.decision = cls.decision;
  result.num_bottom_sccs = cls.num_bottom_sccs;
  return result;
}

CliqueResult decide_clique_pseudo_stochastic_parallel(
    const Machine& machine, const LabelCount& L, const ExploreBudget& budget,
    ExploreStats* stats) {
  ExploreBudget clamped = budget;
  clamped.max_threads = explore_threads(machine, budget);
  const ExploreOutcome out =
      explore_and_classify<CountedConfig, CountedConfigHash>(
          initial_counted_config(machine, L),
          [&](int) { return CountedExpander{machine}; },
          [&](const CountedConfig& c) { return counted_consensus(machine, c); },
          clamped, stats);
  return CliqueResult{out.decision, out.reason, out.num_configs,
                      out.num_bottom_sccs};
}

}  // namespace dawn
