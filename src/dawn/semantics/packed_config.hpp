// Bit-packed configurations and the packed sharded config store.
//
// The explicit-state engines intern millions of configurations; storing each
// as a std::vector<int32_t> costs 4 bytes per node plus a heap allocation
// and a full element-wise rehash per intern. A machine with |Q| states only
// needs ceil(log2 |Q|) bits per node, so a configuration packs into
// ceil(n * bits / 64) machine words:
//
//   * PackedCodec — the stateless encode/decode between Config and a word
//     span (fields may straddle word boundaries; |Q| = 1 packs to zero
//     words, every configuration being equal);
//   * PackedConfigStore — the packed counterpart of ShardedConfigStore
//     (parallel_explore.hpp): 64 independently locked shards, each an
//     open-addressed index over a contiguous word arena, so interning a
//     configuration appends words to the shard arena instead of allocating
//     a per-config node. Hashing and equality are word-wise.
//
// The store requires the machine's state space bound up front
// (Machine::num_states()); lazily-interning compiled stacks fall back to the
// vector store. docs/ENGINE.md covers the memory accounting; the byte-level
// occupancy of either store is surfaced through ExploreStats::store_bytes
// and the explore.store_bytes gauge.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "dawn/automata/config.hpp"
#include "dawn/obs/memory_ledger.hpp"
#include "dawn/util/hash.hpp"

namespace dawn {

// ceil(log2(num_states)) — bits needed to encode states [0, num_states).
// num_states = 1 needs 0 bits (the only state is implicit).
int packed_bits_for(int num_states);

class PackedCodec {
 public:
  PackedCodec() = default;
  // num_states >= 1; num_nodes >= 0. States outside [0, num_states) are a
  // contract violation (checked on encode).
  PackedCodec(int num_states, int num_nodes);

  int bits() const { return bits_; }
  int nodes() const { return nodes_; }
  // Words per packed configuration; 0 when bits() == 0.
  std::size_t words() const { return words_; }
  int num_states() const { return num_states_; }

  // `out` must hold words() entries; fully overwritten.
  void encode(const Config& c, std::uint64_t* out) const;
  // `out` is resized to nodes().
  void decode(const std::uint64_t* in, Config& out) const;

  // Word-wise hash, consistent for equal encodings (and only those — the
  // encoding is injective on valid configs, so this is a sound stand-in for
  // hashing the vector form).
  static std::uint64_t hash_words(const std::uint64_t* w, std::size_t n);

 private:
  int num_states_ = 1;
  int bits_ = 0;
  int nodes_ = 0;
  std::size_t words_ = 0;
};

// Packed drop-in for ShardedConfigStore<Config, VectorHash<State>>: same
// shard/gid/dense contract (parallel_explore.hpp documents it), but values
// live packed in per-shard word arenas — one amortised vector append per
// fresh configuration, no per-config heap node.
class PackedConfigStore {
 public:
  static constexpr int kShardBits = 6;
  static constexpr std::size_t kNumShards = std::size_t{1} << kShardBits;
  static constexpr std::size_t kShardMask = kNumShards - 1;

  // Which MemoryLedger account this store's bytes() lands in.
  static constexpr obs::MemoryAccount kMemoryAccount =
      obs::MemoryAccount::PackedStoreBytes;

  struct InternResult {
    std::int64_t gid = 0;
    bool fresh = false;
  };

  explicit PackedConfigStore(const PackedCodec& codec) : codec_(codec) {}

  InternResult intern(const Config& value);

  std::size_t size() const { return total_.load(std::memory_order_relaxed); }

  // The shard intern(value) would land in, without interning — the routing
  // key of the distributed engine (net/dist_explore.*). Must agree with
  // intern() exactly: same encode, same hash, same mix.
  std::size_t shard_of(const Config& value) const;

  // Freezes the dense remap. Call once, after all interning is done.
  void finalize();

  // Dense id in [0, size) for a gid returned by intern(). Valid after
  // finalize().
  std::int32_t dense(std::int64_t gid) const {
    return offsets_[static_cast<std::size_t>(gid) & kShardMask] +
           static_cast<std::int32_t>(gid >> kShardBits);
  }

  std::size_t shard_peak() const { return shard_peak_; }

  // Final occupancy of each shard, for the chi-square balance statistic.
  // Single-threaded accounting: call after exploration, not during.
  std::array<std::size_t, kNumShards> shard_occupancies() const {
    std::array<std::size_t, kNumShards> out{};
    for (std::size_t sh = 0; sh < kNumShards; ++sh) {
      out[sh] = shards_[sh].count;
    }
    return out;
  }

  // Byte-level occupancy: arena words + per-entry hash + index slots.
  // Single-threaded accounting — call after exploration, not during.
  std::size_t bytes() const;

  // Byte occupancy of shards [begin, end) only. Per-shard bytes are a
  // deterministic function of shard contents (slot growth depends only on
  // insertion count), so disjoint ranges measured on different processes
  // sum to one process's bytes() — see bytes_for_shard_range in
  // parallel_explore.hpp.
  std::size_t bytes_for_shard_range(std::size_t begin, std::size_t end) const;

  // Decodes the stored configuration for a gid (test / debugging aid; call
  // after exploration).
  void value(std::int64_t gid, Config& out) const;

  const PackedCodec& codec() const { return codec_; }

 private:
  struct alignas(64) Shard {
    std::mutex mu;
    std::vector<std::uint64_t> arena;   // local id i occupies [i*w, (i+1)*w)
    std::vector<std::uint64_t> hashes;  // per local id, for probes + growth
    std::vector<std::int32_t> slots;    // open addressing; -1 = empty
    std::size_t count = 0;
  };

  static std::int64_t pack(std::int32_t local, std::size_t shard) {
    return (static_cast<std::int64_t>(local) << kShardBits) |
           static_cast<std::int64_t>(shard);
  }

  static void grow(Shard& s);

  PackedCodec codec_;
  std::array<Shard, kNumShards> shards_;
  std::array<std::int32_t, kNumShards> offsets_{};
  std::atomic<std::size_t> total_{0};
  std::size_t shard_peak_ = 0;
};

}  // namespace dawn
