#include "dawn/semantics/packed_config.hpp"

#include <algorithm>

#include "dawn/util/check.hpp"

namespace dawn {

int packed_bits_for(int num_states) {
  DAWN_CHECK_MSG(num_states >= 1, "packed codec needs |Q| >= 1");
  int bits = 0;
  // Smallest b with 2^b >= num_states.
  while ((std::uint64_t{1} << bits) < static_cast<std::uint64_t>(num_states)) {
    ++bits;
  }
  return bits;
}

PackedCodec::PackedCodec(int num_states, int num_nodes)
    : num_states_(num_states),
      bits_(packed_bits_for(num_states)),
      nodes_(num_nodes) {
  DAWN_CHECK(num_nodes >= 0);
  const std::size_t total_bits =
      static_cast<std::size_t>(bits_) * static_cast<std::size_t>(nodes_);
  words_ = (total_bits + 63) / 64;
}

void PackedCodec::encode(const Config& c, std::uint64_t* out) const {
  DAWN_CHECK(c.size() == static_cast<std::size_t>(nodes_));
  std::fill(out, out + words_, std::uint64_t{0});
  if (bits_ == 0) return;  // |Q| = 1: every configuration is the same
  const auto bits = static_cast<std::size_t>(bits_);
  for (std::size_t i = 0; i < c.size(); ++i) {
    const State s = c[i];
    DAWN_CHECK_MSG(s >= 0 && s < num_states_,
                   "state outside the machine's advertised num_states()");
    const auto v = static_cast<std::uint64_t>(s);
    const std::size_t off = i * bits;
    const std::size_t word = off / 64;
    const std::size_t shift = off % 64;
    out[word] |= v << shift;
    // A field straddling a word boundary spills its high bits into the next
    // word. shift + bits <= 128 always (bits <= 31), and shift > 0 here, so
    // the 64 - shift shift below is well-defined.
    if (shift + bits > 64) out[word + 1] |= v >> (64 - shift);
  }
}

void PackedCodec::decode(const std::uint64_t* in, Config& out) const {
  out.assign(static_cast<std::size_t>(nodes_), 0);
  if (bits_ == 0) return;
  const auto bits = static_cast<std::size_t>(bits_);
  const std::uint64_t mask =
      bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::size_t off = i * bits;
    const std::size_t word = off / 64;
    const std::size_t shift = off % 64;
    std::uint64_t v = in[word] >> shift;
    if (shift + bits > 64) v |= in[word + 1] << (64 - shift);
    out[i] = static_cast<State>(v & mask);
  }
}

std::uint64_t PackedCodec::hash_words(const std::uint64_t* w, std::size_t n) {
  std::size_t seed = n;
  for (std::size_t i = 0; i < n; ++i) hash_combine(seed, w[i]);
  return static_cast<std::uint64_t>(seed);
}

PackedConfigStore::InternResult PackedConfigStore::intern(const Config& value) {
  // Per-thread packing scratch: grows once, then every intern is
  // allocation-free.
  static thread_local std::vector<std::uint64_t> scratch;
  const std::size_t w = codec_.words();
  scratch.resize(w);
  codec_.encode(value, scratch.data());
  const std::uint64_t h = PackedCodec::hash_words(scratch.data(), w);
  // Splitmix finalizer before extracting shard bits, so low-entropy hash
  // regions cannot concentrate shards (same scheme as ShardedConfigStore).
  const std::uint64_t mixed = hash_mix(h);
  const std::size_t shard_idx = static_cast<std::size_t>(mixed) & kShardMask;
  Shard& s = shards_[shard_idx];
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.slots.empty()) s.slots.assign(64, -1);
  const std::size_t slot_mask = s.slots.size() - 1;
  std::size_t pos = static_cast<std::size_t>(mixed >> kShardBits) & slot_mask;
  for (;;) {
    const std::int32_t local = s.slots[pos];
    if (local < 0) break;  // empty slot: `value` is fresh, insert here
    const auto lu = static_cast<std::size_t>(local);
    if (s.hashes[lu] == h &&
        std::equal(scratch.begin(), scratch.end(),
                   s.arena.begin() + static_cast<std::ptrdiff_t>(lu * w))) {
      return {pack(local, shard_idx), false};
    }
    pos = (pos + 1) & slot_mask;
  }
  const auto local = static_cast<std::int32_t>(s.count);
  s.arena.insert(s.arena.end(), scratch.begin(), scratch.end());
  s.hashes.push_back(h);
  s.slots[pos] = local;
  ++s.count;
  // Linear probing stays fast below ~0.7 load.
  if (s.count * 10 >= s.slots.size() * 7) grow(s);
  total_.fetch_add(1, std::memory_order_relaxed);
  return {pack(local, shard_idx), true};
}

std::size_t PackedConfigStore::shard_of(const Config& value) const {
  static thread_local std::vector<std::uint64_t> scratch;
  const std::size_t w = codec_.words();
  scratch.resize(w);
  codec_.encode(value, scratch.data());
  const std::uint64_t h = PackedCodec::hash_words(scratch.data(), w);
  return static_cast<std::size_t>(hash_mix(h)) & kShardMask;
}

void PackedConfigStore::grow(Shard& s) {
  std::vector<std::int32_t> slots(s.slots.size() * 2, -1);
  const std::size_t mask = slots.size() - 1;
  for (std::size_t l = 0; l < s.count; ++l) {
    std::size_t pos =
        static_cast<std::size_t>(hash_mix(s.hashes[l]) >> kShardBits) & mask;
    while (slots[pos] >= 0) pos = (pos + 1) & mask;
    slots[pos] = static_cast<std::int32_t>(l);
  }
  s.slots.swap(slots);
}

void PackedConfigStore::finalize() {
  std::int32_t offset = 0;
  for (std::size_t sh = 0; sh < kNumShards; ++sh) {
    offsets_[sh] = offset;
    const std::size_t occupancy = shards_[sh].count;
    offset += static_cast<std::int32_t>(occupancy);
    if (occupancy > shard_peak_) shard_peak_ = occupancy;
  }
}

std::size_t PackedConfigStore::bytes() const {
  return bytes_for_shard_range(0, kNumShards);
}

std::size_t PackedConfigStore::bytes_for_shard_range(std::size_t begin,
                                                     std::size_t end) const {
  std::size_t total = 0;
  for (std::size_t sh = begin; sh < end; ++sh) {
    const Shard& s = shards_[sh];
    total += s.arena.size() * sizeof(std::uint64_t);
    total += s.hashes.size() * sizeof(std::uint64_t);
    total += s.slots.size() * sizeof(std::int32_t);
  }
  return total;
}

void PackedConfigStore::value(std::int64_t gid, Config& out) const {
  const auto shard_idx = static_cast<std::size_t>(gid) & kShardMask;
  const auto local = static_cast<std::size_t>(gid >> kShardBits);
  const Shard& s = shards_[shard_idx];
  DAWN_CHECK(local < s.count);
  codec_.decode(s.arena.data() + local * codec_.words(), out);
}

}  // namespace dawn
