// Exact adversarial semantics via the synchronous run.
//
// The synchronous schedule (select V every step) is a fair adversarial
// schedule. For an automaton satisfying the consistency condition, *every*
// fair run yields the same verdict, so the synchronous run — which is
// deterministic and therefore eventually periodic — decides the input:
// detect the cycle, and report Accept/Reject if every configuration of the
// cycle is accepting/rejecting, Inconsistent if the cycle is mixed (then the
// synchronous run stabilises to no consensus, so no consistent automaton
// behaves like this and the machine under test is broken).
//
// This is also exactly the tool the paper's own proofs use (Lemmas 3.2 and
// 3.4 argue about synchronous runs).
#pragma once

#include <cstdint>

#include "dawn/automata/machine.hpp"
#include "dawn/graph/graph.hpp"
#include "dawn/semantics/budget.hpp"
#include "dawn/semantics/decision.hpp"

namespace dawn {

struct SyncResult {
  Decision decision = Decision::Unknown;
  UnknownReason reason = UnknownReason::None;  // StepCap / Deadline on Unknown
  std::uint64_t prefix_length = 0;  // steps before the cycle is entered
  std::uint64_t cycle_length = 0;
};

SyncResult decide_synchronous(const Machine& machine, const Graph& g,
                              std::uint64_t max_steps = 1'000'000);

// Budgeted variant: budget.max_configs bounds the run length (each step
// stores one configuration, so the caps coincide), budget.deadline_ms
// applies, and on large graphs the per-step successor computation is split
// across budget.max_threads workers in fixed node ranges — the run itself
// is deterministic, so the result is identical for every thread count.
// Machines without parallel_step_safe() are clamped to one worker.
SyncResult decide_synchronous(const Machine& machine, const Graph& g,
                              const ExploreBudget& budget);

}  // namespace dawn
