#include "dawn/semantics/star_counted.hpp"

#include <algorithm>
#include <unordered_set>

#include "dawn/semantics/parallel_explore.hpp"
#include "dawn/semantics/scc.hpp"
#include "dawn/util/check.hpp"
#include "dawn/util/hash.hpp"
#include "dawn/util/interner.hpp"

namespace dawn {
namespace {

void add_leaf(StarConfig& c, State q, std::int64_t delta) {
  auto it = std::lower_bound(
      c.leaves.begin(), c.leaves.end(), q,
      [](const std::pair<State, std::int64_t>& e, State s) {
        return e.first < s;
      });
  if (it != c.leaves.end() && it->first == q) {
    it->second += delta;
    DAWN_CHECK(it->second >= 0);
    if (it->second == 0) c.leaves.erase(it);
  } else {
    DAWN_CHECK(delta > 0);
    c.leaves.insert(it, {q, delta});
  }
}

Neighbourhood centre_view(const Machine& machine, const StarConfig& c) {
  std::vector<std::pair<State, int>> counts;
  counts.reserve(c.leaves.size());
  for (auto [q, n] : c.leaves) {
    counts.emplace_back(
        q, static_cast<int>(std::min<std::int64_t>(n, machine.beta())));
  }
  return Neighbourhood::from_counts(counts, machine.beta());
}

Neighbourhood leaf_view(const Machine& machine, const StarConfig& c) {
  const std::pair<State, int> counts[] = {{c.centre, 1}};
  return Neighbourhood::from_counts(counts, machine.beta());
}

// Per-worker successor generator for the parallel engine.
struct StarExpander {
  const Machine& machine;
  template <typename Emit>
  void operator()(const StarConfig& current, Emit&& emit) {
    for (const StarConfig& next : star_successors(machine, current)) {
      emit(next);
    }
  }
};

template <typename Visit>
bool explore(const Machine& machine, const StarConfig& start,
             std::size_t max_configs, Visit visit) {
  // BFS; returns false if the budget is exhausted. `visit` may return false
  // to abort early (used by the stable-rejection test).
  Interner<StarConfig, StarConfigHash> configs;
  configs.id(start);
  for (std::size_t head = 0; head < configs.size(); ++head) {
    if (configs.size() > max_configs) return false;
    const StarConfig current = configs.value(static_cast<std::int32_t>(head));
    if (!visit(current)) return true;
    for (const StarConfig& next : star_successors(machine, current)) {
      configs.id(next);
    }
  }
  return true;
}

}  // namespace

std::size_t StarConfigHash::operator()(const StarConfig& c) const {
  std::size_t seed = static_cast<std::size_t>(c.centre) + 0x77;
  for (auto [q, n] : c.leaves) {
    hash_combine(seed, static_cast<std::uint64_t>(q));
    hash_combine(seed, static_cast<std::uint64_t>(n));
  }
  return seed;
}

StarConfig initial_star_config(const Machine& machine, Label centre,
                               const std::vector<Label>& leaves) {
  StarConfig c;
  c.centre = machine.init(centre);
  for (Label l : leaves) add_leaf(c, machine.init(l), 1);
  DAWN_CHECK(!c.leaves.empty());
  return c;
}

std::vector<StarConfig> star_successors(const Machine& machine,
                                        const StarConfig& config) {
  std::vector<StarConfig> out;
  // Centre step.
  {
    const State next = machine.step(config.centre, centre_view(machine, config));
    if (next != config.centre) {
      StarConfig c = config;
      c.centre = next;
      out.push_back(std::move(c));
    }
  }
  // One leaf step per populated leaf state.
  const Neighbourhood view = leaf_view(machine, config);
  for (auto [p, n] : config.leaves) {
    const State next = machine.step(p, view);
    if (next == p) continue;
    StarConfig c = config;
    add_leaf(c, p, -1);
    add_leaf(c, next, +1);
    out.push_back(std::move(c));
  }
  return out;
}

Verdict star_consensus(const Machine& machine, const StarConfig& config) {
  const Verdict first = machine.verdict(config.centre);
  for (auto [q, n] : config.leaves) {
    if (machine.verdict(q) != first) return Verdict::Neutral;
  }
  return first;
}

StarResult decide_star_pseudo_stochastic(const Machine& machine, Label centre,
                                         const std::vector<Label>& leaves,
                                         const ExploreBudget& opts) {
  StarResult result;
  Interner<StarConfig, StarConfigHash> configs;
  std::vector<std::vector<std::int32_t>> adj;
  DeadlineClock deadline(opts);
  configs.id(initial_star_config(machine, centre, leaves));
  adj.emplace_back();
  for (std::size_t head = 0; head < configs.size(); ++head) {
    if (configs.size() > opts.max_configs) {
      result.decision = Decision::Unknown;
      result.reason = UnknownReason::ConfigCap;
      result.num_configs = configs.size();
      return result;
    }
    if (deadline.enabled() && (head & 1023) == 0 && deadline.expired()) {
      result.decision = Decision::Unknown;
      result.reason = UnknownReason::Deadline;
      result.num_configs = configs.size();
      return result;
    }
    const StarConfig current = configs.value(static_cast<std::int32_t>(head));
    for (const StarConfig& next : star_successors(machine, current)) {
      const std::size_t before = configs.size();
      const std::int32_t id = configs.id(next);
      if (configs.size() > before) adj.emplace_back();
      adj[head].push_back(id);
    }
  }
  result.num_configs = configs.size();
  const BottomClassification cls = classify_bottom_sccs(
      adj, [&](std::size_t i) {
        return star_consensus(machine,
                              configs.value(static_cast<std::int32_t>(i)));
      });
  result.decision = cls.decision;
  result.num_bottom_sccs = cls.num_bottom_sccs;
  return result;
}

StarResult decide_star_pseudo_stochastic_parallel(
    const Machine& machine, Label centre, const std::vector<Label>& leaves,
    const ExploreBudget& budget, ExploreStats* stats) {
  ExploreBudget clamped = budget;
  clamped.max_threads = explore_threads(machine, budget);
  const ExploreOutcome out = explore_and_classify<StarConfig, StarConfigHash>(
      initial_star_config(machine, centre, leaves),
      [&](int) { return StarExpander{machine}; },
      [&](const StarConfig& c) { return star_consensus(machine, c); }, clamped,
      stats);
  return StarResult{out.decision, out.reason, out.num_configs,
                    out.num_bottom_sccs};
}

std::optional<bool> is_stably_rejecting(const Machine& machine,
                                        const StarConfig& config,
                                        std::size_t max_configs) {
  bool all_rejecting = true;
  const bool complete =
      explore(machine, config, max_configs, [&](const StarConfig& c) {
        if (star_consensus(machine, c) != Verdict::Reject) {
          all_rejecting = false;
          return false;  // abort: found a non-rejecting reachable config
        }
        return true;
      });
  if (!complete) return std::nullopt;
  return all_rejecting;
}

std::optional<bool> is_stably_accepting(const Machine& machine,
                                        const StarConfig& config,
                                        std::size_t max_configs) {
  bool all_accepting = true;
  const bool complete =
      explore(machine, config, max_configs, [&](const StarConfig& c) {
        if (star_consensus(machine, c) != Verdict::Accept) {
          all_accepting = false;
          return false;
        }
        return true;
      });
  if (!complete) return std::nullopt;
  return all_accepting;
}

}  // namespace dawn
