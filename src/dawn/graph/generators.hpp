// Graph families used throughout the paper's proofs and our experiments.
//
// Every generator takes the node labels explicitly (in node order), so the
// same label multiset can be laid onto different topologies — the key move in
// the paper's labelling-property arguments ("since φ is a labelling property,
// we can choose the underlying graph").
#pragma once

#include <vector>

#include "dawn/graph/graph.hpp"
#include "dawn/util/rng.hpp"

namespace dawn {

// Complete graph on |labels| nodes. Used for the DAF = NL upper bound
// (Lemma 5.1) and the counted-configuration semantics.
Graph make_clique(const std::vector<Label>& labels);

// Cycle v0 - v1 - ... - v_{n-1} - v0. Requires n >= 3. Degree-2; the witness
// family for Corollary 3.3 and Proposition C.2.
Graph make_cycle(const std::vector<Label>& labels);

// Path v0 - v1 - ... - v_{n-1}. Requires n >= 2. Used in Example 4.6 /
// Figure 2 and the Proposition D.1 argument.
Graph make_line(const std::vector<Label>& labels);

// Star: node 0 is the centre, nodes 1.. are leaves. Requires >= 1 leaf.
// The graph family of the Lemma 3.5 cutoff machinery.
Graph make_star(Label centre, const std::vector<Label>& leaves);

// w×h grid with optional wraparound (torus). Degree <= 4; a natural
// bounded-degree family for the Section 6 experiments. Labels in row-major
// order; requires |labels| == w*h and w,h >= 2 (w,h >= 3 for torus).
Graph make_grid(int w, int h, const std::vector<Label>& labels,
                bool torus = false);

// Connected random graph: a uniform random spanning tree plus
// `extra_edges` random non-duplicate edges.
Graph make_random_connected(const std::vector<Label>& labels, int extra_edges,
                            Rng& rng);

// Connected random graph with maximum degree <= k. Built from a random
// Hamiltonian path (degree 2) plus random edges that respect the bound.
// Requires k >= 2.
Graph make_random_bounded_degree(const std::vector<Label>& labels, int k,
                                 int extra_edges, Rng& rng);

// Convenience: a label vector with `counts[l]` occurrences of label l,
// in ascending label order.
std::vector<Label> labels_from_count(const LabelCount& counts);

}  // namespace dawn
