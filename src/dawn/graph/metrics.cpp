#include "dawn/graph/metrics.hpp"

#include <algorithm>
#include <deque>

#include "dawn/util/check.hpp"

namespace dawn {

std::vector<int> bfs_distances(const Graph& g, NodeId source) {
  DAWN_CHECK(source >= 0 && source < g.n());
  std::vector<int> dist(static_cast<std::size_t>(g.n()), -1);
  std::deque<NodeId> queue{source};
  dist[static_cast<std::size_t>(source)] = 0;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (NodeId u : g.neighbours(v)) {
      if (dist[static_cast<std::size_t>(u)] == -1) {
        dist[static_cast<std::size_t>(u)] =
            dist[static_cast<std::size_t>(v)] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

int eccentricity(const Graph& g, NodeId source) {
  const auto dist = bfs_distances(g, source);
  int best = 0;
  for (int d : dist) {
    if (d < 0) return -1;
    best = std::max(best, d);
  }
  return best;
}

int diameter(const Graph& g) {
  int best = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    const int e = eccentricity(g, v);
    if (e < 0) return -1;
    best = std::max(best, e);
  }
  return best;
}

bool is_k_regular(const Graph& g, int k) {
  for (NodeId v = 0; v < g.n(); ++v) {
    if (g.degree(v) != k) return false;
  }
  return true;
}

}  // namespace dawn
