#include "dawn/graph/covering.hpp"

#include <algorithm>
#include <unordered_set>

#include "dawn/util/check.hpp"

namespace dawn {

Covering cycle_cover(const std::vector<Label>& labels, int lambda) {
  const int n = static_cast<int>(labels.size());
  DAWN_CHECK(n >= 3);
  DAWN_CHECK(lambda >= 1);
  GraphBuilder b;
  std::vector<NodeId> map;
  map.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(lambda));
  for (int r = 0; r < lambda; ++r) {
    for (int v = 0; v < n; ++v) {
      b.add_node(labels[static_cast<std::size_t>(v)]);
      map.push_back(static_cast<NodeId>(v));
    }
  }
  const int total = n * lambda;
  for (NodeId v = 0; v < total; ++v) b.add_edge(v, (v + 1) % total);
  return Covering{std::move(b).build(), std::move(map)};
}

Covering lift(const Graph& g, int lambda, Rng& rng) {
  DAWN_CHECK(lambda >= 1);
  const int n = g.n();
  GraphBuilder b;
  std::vector<NodeId> map;
  map.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(lambda));
  auto at = [n](NodeId v, int sheet) {
    return static_cast<NodeId>(sheet * n + v);
  };
  for (int sheet = 0; sheet < lambda; ++sheet) {
    for (NodeId v = 0; v < n; ++v) {
      b.add_node(g.label(v));
      map.push_back(v);
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.neighbours(u)) {
      if (u >= v) continue;
      const int shift =
          static_cast<int>(rng.index(static_cast<std::size_t>(lambda)));
      for (int sheet = 0; sheet < lambda; ++sheet) {
        b.add_edge(at(u, sheet), at(v, (sheet + shift) % lambda));
      }
    }
  }
  return Covering{std::move(b).build(), std::move(map)};
}

bool verify_covering(const Covering& cov, const Graph& g) {
  const Graph& h = cov.cover;
  if (static_cast<int>(cov.map.size()) != h.n()) return false;
  std::vector<bool> hit(static_cast<std::size_t>(g.n()), false);
  for (NodeId v = 0; v < h.n(); ++v) {
    NodeId fv = cov.map[static_cast<std::size_t>(v)];
    if (fv < 0 || fv >= g.n()) return false;
    hit[static_cast<std::size_t>(fv)] = true;
    if (h.label(v) != g.label(fv)) return false;
    // Local bijection: f restricted to N_H(v) is a bijection onto N_G(f(v)).
    auto g_nbrs = g.neighbours(fv);
    if (h.degree(v) != static_cast<int>(g_nbrs.size())) return false;
    std::unordered_set<NodeId> image;
    for (NodeId u : h.neighbours(v)) {
      NodeId fu = cov.map[static_cast<std::size_t>(u)];
      if (!image.insert(fu).second) return false;  // not injective
      if (std::find(g_nbrs.begin(), g_nbrs.end(), fu) == g_nbrs.end()) {
        return false;  // image outside N_G(f(v))
      }
    }
  }
  return std::all_of(hit.begin(), hit.end(), [](bool x) { return x; });
}

}  // namespace dawn
