// Graph coverings (Lemma 3.2 / Corollary 3.3).
//
// H covers G when there is a surjection f: V_H -> V_G that preserves labels
// and maps the neighbourhood of each v in H bijectively onto the
// neighbourhood of f(v) in G. DAf-automata cannot distinguish a graph from
// its coverings; the λ-fold cover of a cycle is the witness the paper uses to
// show DAf verdicts are invariant under scalar multiplication of the label
// count.
#pragma once

#include <vector>

#include "dawn/graph/graph.hpp"
#include "dawn/util/rng.hpp"

namespace dawn {

struct Covering {
  Graph cover;                 // H
  std::vector<NodeId> map;     // f: V_H -> V_G
};

// The λ-fold cover of the cycle carrying `labels`: a cycle with the label
// sequence repeated λ times (the construction in the proof of Cor. 3.3).
// Requires |labels| >= 3 and lambda >= 1.
Covering cycle_cover(const std::vector<Label>& labels, int lambda);

// A λ-fold lift of an arbitrary graph: node set V×[λ], and for every edge
// {u,v} of G a cyclic shift s(e) ∈ [λ] connecting (u,i)-(v,(i+s(e)) mod λ).
// Always a covering of G; connectivity depends on the shifts, so callers
// should check `cover.is_connected()` (random shifts make it very likely).
Covering lift(const Graph& g, int lambda, Rng& rng);

// Checks that `f` (given as cov.map) is a covering map from cov.cover onto g:
// surjective, label-preserving, and a local bijection on neighbourhoods.
bool verify_covering(const Covering& cov, const Graph& g);

}  // namespace dawn
