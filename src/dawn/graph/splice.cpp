#include "dawn/graph/splice.hpp"

#include "dawn/util/check.hpp"

namespace dawn {

Splice splice_cyclic(const Graph& g, std::pair<NodeId, NodeId> edge_g,
                     int copies_g, const Graph& h,
                     std::pair<NodeId, NodeId> edge_h, int copies_h) {
  DAWN_CHECK(copies_g >= 1 && copies_h >= 1);
  DAWN_CHECK(g.has_edge(edge_g.first, edge_g.second));
  DAWN_CHECK(h.has_edge(edge_h.first, edge_h.second));

  GraphBuilder b;
  Splice result;

  // Node layout: all copies of G first, then all copies of H.
  auto g_at = [&](int copy, NodeId v) {
    return static_cast<NodeId>(copy * g.n() + v);
  };
  auto h_at = [&](int copy, NodeId v) {
    return static_cast<NodeId>(copies_g * g.n() + copy * h.n() + v);
  };

  for (int c = 0; c < copies_g; ++c) {
    for (NodeId v = 0; v < g.n(); ++v) {
      b.add_node(g.label(v));
      result.origins.push_back({0, c, v});
    }
  }
  for (int c = 0; c < copies_h; ++c) {
    for (NodeId v = 0; v < h.n(); ++v) {
      b.add_node(h.label(v));
      result.origins.push_back({1, c, v});
    }
  }

  auto copy_edges = [&](const Graph& src, std::pair<NodeId, NodeId> skip,
                        int copies, auto at) {
    for (int c = 0; c < copies; ++c) {
      for (NodeId v = 0; v < src.n(); ++v) {
        for (NodeId u : src.neighbours(v)) {
          if (v >= u) continue;
          const bool is_skip = (v == skip.first && u == skip.second) ||
                               (v == skip.second && u == skip.first);
          if (is_skip) continue;  // removed edge
          b.add_edge(at(c, v), at(c, u));
        }
      }
    }
  };
  copy_edges(g, edge_g, copies_g, g_at);
  copy_edges(h, edge_h, copies_h, h_at);

  // Chain: v_G^c — u_G^{c+1}, then v_G^{last} — u_H^0, then v_H^c — u_H^{c+1}.
  auto [u_g, v_g] = edge_g;
  auto [u_h, v_h] = edge_h;
  for (int c = 0; c + 1 < copies_g; ++c) {
    b.add_edge(g_at(c, v_g), g_at(c + 1, u_g));
  }
  b.add_edge(g_at(copies_g - 1, v_g), h_at(0, u_h));
  for (int c = 0; c + 1 < copies_h; ++c) {
    b.add_edge(h_at(c, v_h), h_at(c + 1, u_h));
  }

  result.graph = std::move(b).build();
  return result;
}

}  // namespace dawn
