// The splicing construction of Lemma 3.1 / Figure 3.
//
// Given cyclic graphs G and H (with designated cycle edges e_G, e_H) and
// repetition counts, builds the graph GH: 2g+1 copies of G and 2h+1 copies of
// H, the designated edges removed, and the copies chained into one connected
// graph. A halting automaton that accepts G and rejects H reaches a
// configuration of GH in which some nodes have halted accepting and others
// have halted rejecting — contradicting consistency. This makes the
// impossibility executable.
#pragma once

#include <utility>
#include <vector>

#include "dawn/graph/graph.hpp"

namespace dawn {

struct Splice {
  Graph graph;
  // For each node of `graph`: which source graph it came from (0 = G, 1 = H),
  // which copy, and which original node. Used to map scheduled selections of
  // the runs on G and H onto GH.
  struct Origin {
    int source;  // 0 for G, 1 for H
    int copy;
    NodeId node;
  };
  std::vector<Origin> origins;
};

// `edge_g` must be an edge on a cycle of g, `edge_h` on a cycle of h.
// `copies_g` and `copies_h` are the number of copies (the proof uses 2g+1 and
// 2h+1 where g, h are the halting times).
Splice splice_cyclic(const Graph& g, std::pair<NodeId, NodeId> edge_g,
                     int copies_g, const Graph& h,
                     std::pair<NodeId, NodeId> edge_h, int copies_h);

}  // namespace dawn
