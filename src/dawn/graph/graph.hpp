// Labelled undirected graphs — the communication topology of a distributed
// automaton (Section 2 of the paper).
//
// Per the paper's convention, graphs used as automaton inputs are connected,
// have at least three nodes, and carry a label from a finite alphabet on each
// node. `Graph` itself does not enforce the convention (intermediate
// construction steps may violate it); `satisfies_paper_convention` checks it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dawn {

using NodeId = std::int32_t;
using Label = std::int32_t;

// Label count L_G: for each label, the number of nodes carrying it
// (Definition A.1). Indexed by label; labels are dense ints [0, num_labels).
using LabelCount = std::vector<std::int64_t>;

class Graph {
 public:
  Graph() = default;
  // `adjacency[v]` lists the neighbours of v (each edge appears in both
  // endpoint lists). `labels[v]` is the label of v.
  Graph(std::vector<std::vector<NodeId>> adjacency, std::vector<Label> labels);

  int n() const { return static_cast<int>(labels_.size()); }
  int m() const { return num_edges_; }

  std::span<const NodeId> neighbours(NodeId v) const {
    return adjacency_[static_cast<std::size_t>(v)];
  }
  int degree(NodeId v) const {
    return static_cast<int>(adjacency_[static_cast<std::size_t>(v)].size());
  }
  Label label(NodeId v) const { return labels_[static_cast<std::size_t>(v)]; }

  int max_degree() const;
  bool is_connected() const;
  bool has_edge(NodeId u, NodeId v) const;

  // True iff connected, |V| >= 3, no self-loops and no parallel edges.
  bool satisfies_paper_convention() const;

  // L_G over the alphabet [0, num_labels). Labels outside the range are an
  // error. If num_labels < 0, uses 1 + max label present.
  LabelCount label_count(int num_labels = -1) const;

  // GraphViz rendering (for debugging and the trace benches).
  std::string to_dot() const;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<Label> labels_;
  int num_edges_ = 0;
};

// Incremental construction.
class GraphBuilder {
 public:
  NodeId add_node(Label label);
  // Adds the undirected edge {u, v}. Self-loops and duplicates are errors.
  void add_edge(NodeId u, NodeId v);
  Graph build() &&;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<Label> labels_;
};

}  // namespace dawn
