#include "dawn/graph/graph.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "dawn/util/check.hpp"
#include "dawn/util/hash.hpp"

namespace dawn {

Graph::Graph(std::vector<std::vector<NodeId>> adjacency,
             std::vector<Label> labels)
    : adjacency_(std::move(adjacency)), labels_(std::move(labels)) {
  DAWN_CHECK(adjacency_.size() == labels_.size());
  int degree_sum = 0;
  for (std::size_t v = 0; v < adjacency_.size(); ++v) {
    degree_sum += static_cast<int>(adjacency_[v].size());
    for (NodeId u : adjacency_[v]) {
      DAWN_CHECK(u >= 0 && static_cast<std::size_t>(u) < adjacency_.size());
    }
  }
  DAWN_CHECK(degree_sum % 2 == 0);
  num_edges_ = degree_sum / 2;
}

int Graph::max_degree() const {
  int best = 0;
  for (NodeId v = 0; v < n(); ++v) best = std::max(best, degree(v));
  return best;
}

bool Graph::is_connected() const {
  if (n() == 0) return false;
  std::vector<bool> seen(static_cast<std::size_t>(n()), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  int reached = 1;
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    for (NodeId u : neighbours(v)) {
      if (!seen[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = true;
        ++reached;
        stack.push_back(u);
      }
    }
  }
  return reached == n();
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  auto nbrs = neighbours(u);
  return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

bool Graph::satisfies_paper_convention() const {
  if (n() < 3 || !is_connected()) return false;
  for (NodeId v = 0; v < n(); ++v) {
    std::unordered_set<NodeId> seen;
    for (NodeId u : neighbours(v)) {
      if (u == v) return false;              // self-loop
      if (!seen.insert(u).second) return false;  // parallel edge
    }
  }
  return true;
}

LabelCount Graph::label_count(int num_labels) const {
  int k = num_labels;
  if (k < 0) {
    k = 0;
    for (Label l : labels_) k = std::max(k, l + 1);
  }
  LabelCount count(static_cast<std::size_t>(k), 0);
  for (Label l : labels_) {
    DAWN_CHECK_MSG(l >= 0 && l < k, "label outside alphabet");
    ++count[static_cast<std::size_t>(l)];
  }
  return count;
}

std::string Graph::to_dot() const {
  std::ostringstream out;
  out << "graph G {\n";
  for (NodeId v = 0; v < n(); ++v) {
    out << "  n" << v << " [label=\"" << v << ":" << label(v) << "\"];\n";
  }
  for (NodeId v = 0; v < n(); ++v) {
    for (NodeId u : neighbours(v)) {
      if (v < u) out << "  n" << v << " -- n" << u << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

NodeId GraphBuilder::add_node(Label label) {
  DAWN_CHECK(label >= 0);
  adjacency_.emplace_back();
  labels_.push_back(label);
  return static_cast<NodeId>(labels_.size()) - 1;
}

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  DAWN_CHECK_MSG(u != v, "self-loops are not allowed");
  DAWN_CHECK(u >= 0 && static_cast<std::size_t>(u) < labels_.size());
  DAWN_CHECK(v >= 0 && static_cast<std::size_t>(v) < labels_.size());
  auto& nu = adjacency_[static_cast<std::size_t>(u)];
  DAWN_CHECK_MSG(std::find(nu.begin(), nu.end(), v) == nu.end(),
                 "parallel edges are not allowed");
  nu.push_back(v);
  adjacency_[static_cast<std::size_t>(v)].push_back(u);
}

Graph GraphBuilder::build() && {
  return Graph(std::move(adjacency_), std::move(labels_));
}

}  // namespace dawn
