// Graph metrics used by the experiments: BFS distances, eccentricity,
// diameter, regularity. The simulation overheads of Lemmas 4.7/4.9 are
// latency-bound by the diameter, so the benches report it measured, not
// guessed.
#pragma once

#include <vector>

#include "dawn/graph/graph.hpp"

namespace dawn {

// BFS distances from `source`; unreachable nodes get -1.
std::vector<int> bfs_distances(const Graph& g, NodeId source);

// max_v dist(source, v); -1 if the graph is disconnected.
int eccentricity(const Graph& g, NodeId source);

// max over sources of the eccentricity; -1 if disconnected.
int diameter(const Graph& g);

// Every node has degree exactly k?
bool is_k_regular(const Graph& g, int k);

}  // namespace dawn
