#include "dawn/graph/generators.hpp"

#include <algorithm>
#include <numeric>

#include "dawn/util/check.hpp"

namespace dawn {

Graph make_clique(const std::vector<Label>& labels) {
  const int n = static_cast<int>(labels.size());
  DAWN_CHECK(n >= 2);
  GraphBuilder b;
  for (Label l : labels) b.add_node(l);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return std::move(b).build();
}

Graph make_cycle(const std::vector<Label>& labels) {
  const int n = static_cast<int>(labels.size());
  DAWN_CHECK(n >= 3);
  GraphBuilder b;
  for (Label l : labels) b.add_node(l);
  for (NodeId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return std::move(b).build();
}

Graph make_line(const std::vector<Label>& labels) {
  const int n = static_cast<int>(labels.size());
  DAWN_CHECK(n >= 2);
  GraphBuilder b;
  for (Label l : labels) b.add_node(l);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return std::move(b).build();
}

Graph make_star(Label centre, const std::vector<Label>& leaves) {
  DAWN_CHECK(!leaves.empty());
  GraphBuilder b;
  NodeId c = b.add_node(centre);
  for (Label l : leaves) {
    NodeId leaf = b.add_node(l);
    b.add_edge(c, leaf);
  }
  return std::move(b).build();
}

Graph make_grid(int w, int h, const std::vector<Label>& labels, bool torus) {
  DAWN_CHECK(w >= 2 && h >= 2);
  if (torus) DAWN_CHECK_MSG(w >= 3 && h >= 3, "torus needs w,h >= 3");
  DAWN_CHECK(static_cast<int>(labels.size()) == w * h);
  GraphBuilder b;
  for (Label l : labels) b.add_node(l);
  auto at = [w](int x, int y) { return static_cast<NodeId>(y * w + x); };
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (x + 1 < w) b.add_edge(at(x, y), at(x + 1, y));
      else if (torus) b.add_edge(at(x, y), at(0, y));
      if (y + 1 < h) b.add_edge(at(x, y), at(x, y + 1));
      else if (torus) b.add_edge(at(x, y), at(x, 0));
    }
  }
  return std::move(b).build();
}

Graph make_random_connected(const std::vector<Label>& labels, int extra_edges,
                            Rng& rng) {
  const int n = static_cast<int>(labels.size());
  DAWN_CHECK(n >= 2);
  GraphBuilder b;
  for (Label l : labels) b.add_node(l);
  // Random spanning tree: attach each node to a uniformly random earlier one.
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  for (int i = 1; i < n; ++i) {
    NodeId parent = order[rng.index(static_cast<std::size_t>(i))];
    b.add_edge(order[static_cast<std::size_t>(i)], parent);
  }
  Graph tree = std::move(b).build();
  // Re-add into a builder that tolerates duplicate attempts by checking first.
  GraphBuilder b2;
  for (Label l : labels) b2.add_node(l);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId u : tree.neighbours(v)) {
      if (v < u) edges.emplace_back(v, u);
    }
  }
  for (auto [u, v] : edges) b2.add_edge(u, v);
  int added = 0;
  int attempts = 0;
  Graph current = Graph({}, {});
  while (added < extra_edges && attempts < 50 * (extra_edges + 1)) {
    ++attempts;
    auto u = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    auto v = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    if (u == v) continue;
    bool dup = false;
    for (auto [a, bb] : edges) {
      if ((a == u && bb == v) || (a == v && bb == u)) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    edges.emplace_back(std::min(u, v), std::max(u, v));
    b2.add_edge(u, v);
    ++added;
  }
  return std::move(b2).build();
}

Graph make_random_bounded_degree(const std::vector<Label>& labels, int k,
                                 int extra_edges, Rng& rng) {
  const int n = static_cast<int>(labels.size());
  DAWN_CHECK(n >= 2);
  DAWN_CHECK_MSG(k >= 2, "degree bound must allow a connected graph");
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  GraphBuilder b;
  for (Label l : labels) b.add_node(l);
  std::vector<int> degree(static_cast<std::size_t>(n), 0);
  std::vector<std::pair<NodeId, NodeId>> edges;
  auto connect = [&](NodeId u, NodeId v) {
    b.add_edge(u, v);
    ++degree[static_cast<std::size_t>(u)];
    ++degree[static_cast<std::size_t>(v)];
    edges.emplace_back(std::min(u, v), std::max(u, v));
  };
  // Hamiltonian path keeps every degree <= 2.
  for (int i = 0; i + 1 < n; ++i) {
    connect(order[static_cast<std::size_t>(i)],
            order[static_cast<std::size_t>(i + 1)]);
  }
  int added = 0;
  int attempts = 0;
  while (added < extra_edges && attempts < 50 * (extra_edges + 1)) {
    ++attempts;
    auto u = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    auto v = static_cast<NodeId>(rng.index(static_cast<std::size_t>(n)));
    if (u == v) continue;
    if (degree[static_cast<std::size_t>(u)] >= k ||
        degree[static_cast<std::size_t>(v)] >= k) {
      continue;
    }
    bool dup = false;
    for (auto [a, bb] : edges) {
      if ((a == std::min(u, v)) && (bb == std::max(u, v))) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    connect(u, v);
    ++added;
  }
  return std::move(b).build();
}

std::vector<Label> labels_from_count(const LabelCount& counts) {
  std::vector<Label> labels;
  for (std::size_t l = 0; l < counts.size(); ++l) {
    for (std::int64_t i = 0; i < counts[l]; ++i) {
      labels.push_back(static_cast<Label>(l));
    }
  }
  return labels;
}

}  // namespace dawn
