// Cutoff computation for dAF-automata (Lemma 3.5), made effective.
//
// The proof shows: there is an m such that a star configuration C is stably
// rejecting iff ⌈C⌉_m is (and likewise for acceptance), and from it derives
// a cutoff K for the decided labelling property. Here m is *computed*: it is
// the largest leaf count in the minimal bases of Pre*(↑non-rejecting) and
// Pre*(↑non-accepting) — membership in an upward-closed set with basis
// counts <= m depends only on counts capped at m. K then follows by the
// paper's pigeonhole bound K = m(|Q| - 1) + 2.
#pragma once

#include <optional>

#include "dawn/symbolic/backward.hpp"

namespace dawn {

struct CutoffAnalysis {
  // Basis of the configurations that can reach a non-rejecting one; the
  // complement is "stably rejecting".
  UpwardClosedStarSet reach_non_rejecting;
  UpwardClosedStarSet reach_non_accepting;
  std::int64_t m = 0;  // the Lemma 3.5 constant
  std::int64_t K = 0;  // the derived property cutoff, m(|Q|-1)+2
};

// nullopt if a basis exceeded the budget.
std::optional<CutoffAnalysis> analyse_cutoff(const Machine& machine,
                                             const PreStarOptions& opts = {});

// Symbolic stable rejection / acceptance (for stars with any number of
// leaves; the analysis answers instantly once computed).
bool symbolically_stably_rejecting(const CutoffAnalysis& a,
                                   const StarConfig& c);
bool symbolically_stably_accepting(const CutoffAnalysis& a,
                                   const StarConfig& c);

}  // namespace dawn
