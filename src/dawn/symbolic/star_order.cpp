#include "dawn/symbolic/star_order.hpp"

#include <algorithm>

namespace dawn {

bool star_leq(const StarConfig& c, const StarConfig& d) {
  if (c.centre != d.centre) return false;
  if (c.leaves.size() != d.leaves.size()) return false;  // supports differ
  for (std::size_t i = 0; i < c.leaves.size(); ++i) {
    if (c.leaves[i].first != d.leaves[i].first) return false;  // support
    if (c.leaves[i].second > d.leaves[i].second) return false;
  }
  return true;
}

bool UpwardClosedStarSet::contains(const StarConfig& c) const {
  return std::any_of(basis_.begin(), basis_.end(),
                     [&](const StarConfig& b) { return star_leq(b, c); });
}

bool UpwardClosedStarSet::insert(const StarConfig& c) {
  if (contains(c)) return false;
  std::erase_if(basis_, [&](const StarConfig& b) { return star_leq(c, b); });
  basis_.push_back(c);
  return true;
}

std::int64_t UpwardClosedStarSet::max_count() const {
  std::int64_t best = 0;
  for (const StarConfig& b : basis_) {
    for (auto [q, n] : b.leaves) best = std::max(best, n);
  }
  return best;
}

}  // namespace dawn
