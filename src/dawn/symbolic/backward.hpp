// Backward reachability over star configurations — the algorithmic content
// of Lemma 3.5.
//
// For a non-counting (β = 1) machine on a star, the one-step relation is:
//   centre step:  (q, v) -> (δ(q, ind(supp v)), v)
//   leaf step:    (q, v) -> (q, v - e_p + e_{p'})  with p' = δ(p, ind{q})
//
// The system is strongly compatible with the order of star_order.hpp
// (claim (1) in the paper's proof: adding leaves in occupied states can be
// mimicked), so Pre*(U) of an upward-closed U is upward closed and the
// standard WSTS backward algorithm applies: saturate a minimal basis with
// minimal one-step predecessors until a fixpoint; termination by Dickson's
// lemma (claim (2)).
//
// With Pre* of the upward-closed set of non-rejecting configurations one
// obtains stable rejection symbolically — for stars with ANY number of
// leaves at once:  C is stably rejecting  iff  C ∉ Pre*(↑NonRejecting).
#pragma once

#include <optional>

#include "dawn/automata/machine.hpp"
#include "dawn/symbolic/star_order.hpp"

namespace dawn {

struct PreStarOptions {
  // Abort (returning nullopt) if the basis grows beyond this.
  std::size_t max_basis = 100'000;
};

// Minimal one-step predecessors of ↑elem (a sound and complete generator
// set: ↑min_pre(↑elem) together with ↑elem covers Pre(↑elem), and by strong
// compatibility iterating yields exactly Pre*). Requires machine.beta() == 1
// and an enumerable machine (num_states()).
std::vector<StarConfig> min_pre(const Machine& machine,
                                const StarConfig& elem);

// The least fixpoint: basis of Pre*(↑target).
std::optional<UpwardClosedStarSet> pre_star(const Machine& machine,
                                            UpwardClosedStarSet target,
                                            const PreStarOptions& opts = {});

// Minimal bases of the upward-closed sets of non-rejecting (resp.
// non-accepting) star configurations: one element per (centre, support)
// sector that contains a state with verdict != Reject (resp. != Accept).
UpwardClosedStarSet non_rejecting_basis(const Machine& machine);
UpwardClosedStarSet non_accepting_basis(const Machine& machine);

}  // namespace dawn
