// The well-quasi-order on star configurations used by Lemma 3.5, and
// upward-closed sets represented by minimal bases.
//
// C ⊑ D iff the centres agree, the leaf supports agree exactly, and the
// leaf counts satisfy C <= D pointwise (the paper's ⪯, conditions (a)-(c)).
// Within each (centre, support) sector this is Dickson's order on N^|S|, so
// every upward-closed set has a finite minimal basis and the backward
// reachability of backward.hpp terminates.
#pragma once

#include <cstddef>
#include <vector>

#include "dawn/semantics/star_counted.hpp"

namespace dawn {

// C ⊑ D (D is "at least" C): same centre, same support, counts <=.
bool star_leq(const StarConfig& c, const StarConfig& d);

// An upward-closed set of star configurations, kept as an antichain of
// minimal elements.
class UpwardClosedStarSet {
 public:
  // True iff some basis element is <= c (i.e. c is in the set).
  bool contains(const StarConfig& c) const;

  // Inserts ↑c. Returns false if c was already covered; otherwise adds c and
  // prunes basis elements that c subsumes.
  bool insert(const StarConfig& c);

  const std::vector<StarConfig>& basis() const { return basis_; }
  std::size_t size() const { return basis_.size(); }

  // The largest leaf count appearing in any basis element (the `m` of
  // Lemma 3.5: membership of C depends only on ⌈C⌉_m).
  std::int64_t max_count() const;

 private:
  std::vector<StarConfig> basis_;
};

}  // namespace dawn
