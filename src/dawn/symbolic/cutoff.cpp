#include "dawn/symbolic/cutoff.hpp"

#include <algorithm>

#include "dawn/util/check.hpp"

namespace dawn {

std::optional<CutoffAnalysis> analyse_cutoff(const Machine& machine,
                                             const PreStarOptions& opts) {
  const auto num_states = machine.num_states();
  DAWN_CHECK(num_states.has_value());
  CutoffAnalysis out;
  auto rej = pre_star(machine, non_rejecting_basis(machine), opts);
  if (!rej) return std::nullopt;
  auto acc = pre_star(machine, non_accepting_basis(machine), opts);
  if (!acc) return std::nullopt;
  out.reach_non_rejecting = std::move(*rej);
  out.reach_non_accepting = std::move(*acc);
  out.m = std::max<std::int64_t>(
      1, std::max(out.reach_non_rejecting.max_count(),
                  out.reach_non_accepting.max_count()));
  out.K = out.m * (*num_states - 1) + 2;
  return out;
}

bool symbolically_stably_rejecting(const CutoffAnalysis& a,
                                   const StarConfig& c) {
  return !a.reach_non_rejecting.contains(c);
}

bool symbolically_stably_accepting(const CutoffAnalysis& a,
                                   const StarConfig& c) {
  return !a.reach_non_accepting.contains(c);
}

}  // namespace dawn
