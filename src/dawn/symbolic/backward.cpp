#include "dawn/symbolic/backward.hpp"

#include <algorithm>
#include <deque>

#include "dawn/util/check.hpp"

namespace dawn {
namespace {

Neighbourhood presence_of(const std::vector<State>& states) {
  std::vector<std::pair<State, int>> counts;
  counts.reserve(states.size());
  for (State s : states) counts.emplace_back(s, 1);
  return Neighbourhood::from_counts(counts, 1);
}

Neighbourhood presence_of_support(const StarConfig& c) {
  std::vector<State> states;
  states.reserve(c.leaves.size());
  for (auto [q, n] : c.leaves) states.push_back(q);
  return presence_of(states);
}

void bump(StarConfig& c, State q, std::int64_t delta) {
  auto it = std::lower_bound(
      c.leaves.begin(), c.leaves.end(), q,
      [](const std::pair<State, std::int64_t>& e, State s) {
        return e.first < s;
      });
  if (it != c.leaves.end() && it->first == q) {
    it->second += delta;
    DAWN_CHECK(it->second >= 0);
    if (it->second == 0) c.leaves.erase(it);
  } else {
    DAWN_CHECK(delta > 0);
    c.leaves.insert(it, {q, delta});
  }
}

std::int64_t count_of(const StarConfig& c, State q) {
  auto it = std::lower_bound(
      c.leaves.begin(), c.leaves.end(), q,
      [](const std::pair<State, std::int64_t>& e, State s) {
        return e.first < s;
      });
  if (it != c.leaves.end() && it->first == q) return it->second;
  return 0;
}

}  // namespace

std::vector<StarConfig> min_pre(const Machine& machine,
                                const StarConfig& elem) {
  DAWN_CHECK_MSG(machine.beta() == 1,
                 "the symbolic engine handles non-counting (dAF) machines");
  const auto num_states = machine.num_states();
  DAWN_CHECK_MSG(num_states.has_value(),
                 "the symbolic engine needs an enumerable machine");
  const int n = *num_states;

  std::vector<StarConfig> preds;

  // Centre predecessors: some centre state q steps to elem.centre while the
  // leaves already match.
  const Neighbourhood support_view = presence_of_support(elem);
  for (State q = 0; q < n; ++q) {
    if (q == elem.centre) continue;  // silent; covered by ↑elem itself
    if (machine.step(q, support_view) == elem.centre) {
      StarConfig pred = elem;
      pred.centre = q;
      preds.push_back(std::move(pred));
    }
  }

  // Leaf predecessors: a leaf in state p moved to p' = δ(p, {centre}). The
  // successor must lie in ↑elem: its support equals elem's support and its
  // counts dominate elem's, with at least one leaf in p'.
  const Neighbourhood centre_view = presence_of({elem.centre});
  for (State p = 0; p < n; ++p) {
    const State moved = machine.step(p, centre_view);
    if (moved == p) continue;
    const std::int64_t have = count_of(elem, moved);
    if (have == 0) continue;  // p' outside the support: no such successor
    // Minimal successor with the leaf still counted: succ = elem, giving the
    // predecessor elem - e_{p'} + e_p. When elem has exactly one p' leaf the
    // predecessor's support drops p'; the variant succ = elem + e_{p'} keeps
    // p' in the predecessor's support (both are needed for completeness,
    // since the order compares supports exactly).
    {
      StarConfig pred = elem;
      bump(pred, moved, -1);
      bump(pred, p, +1);
      preds.push_back(std::move(pred));
    }
    if (have == 1) {
      StarConfig pred = elem;  // succ = elem + e_{p'}: p' stays populated
      bump(pred, p, +1);
      preds.push_back(std::move(pred));
    }
  }
  return preds;
}

std::optional<UpwardClosedStarSet> pre_star(const Machine& machine,
                                            UpwardClosedStarSet target,
                                            const PreStarOptions& opts) {
  std::deque<StarConfig> worklist(target.basis().begin(),
                                  target.basis().end());
  while (!worklist.empty()) {
    if (target.size() > opts.max_basis) return std::nullopt;
    const StarConfig elem = std::move(worklist.front());
    worklist.pop_front();
    // `elem` may have been subsumed since it was queued; its predecessors
    // would still be sound, but recomputing from the covering element keeps
    // the basis minimal, so just skip stale entries.
    if (!target.contains(elem)) continue;
    for (StarConfig& pred : min_pre(machine, elem)) {
      if (target.insert(pred)) worklist.push_back(pred);
    }
  }
  return target;
}

namespace {

UpwardClosedStarSet sector_basis(const Machine& machine,
                                 const std::function<bool(State)>& good) {
  const auto num_states = machine.num_states();
  DAWN_CHECK(num_states.has_value());
  const int n = *num_states;
  DAWN_CHECK_MSG(n <= 20, "sector enumeration is exponential in |Q|");
  UpwardClosedStarSet out;
  for (State centre = 0; centre < n; ++centre) {
    for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
      bool sector_good = good(centre);
      StarConfig c;
      c.centre = centre;
      for (State q = 0; q < n; ++q) {
        if (mask & (1u << q)) {
          c.leaves.push_back({q, 1});
          sector_good = sector_good || good(q);
        }
      }
      if (sector_good) out.insert(c);
    }
  }
  return out;
}

}  // namespace

UpwardClosedStarSet non_rejecting_basis(const Machine& machine) {
  return sector_basis(machine, [&](State s) {
    return machine.verdict(s) != Verdict::Reject;
  });
}

UpwardClosedStarSet non_accepting_basis(const Machine& machine) {
  return sector_basis(machine, [&](State s) {
    return machine.verdict(s) != Verdict::Accept;
  });
}

}  // namespace dawn
