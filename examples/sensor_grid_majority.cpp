// Sensor-grid majority vote — the paper's headline bounded-degree result
// (Section 6.1) on a realistic scenario.
//
// A field of simple sensors is wired as a torus (every sensor talks to its 4
// neighbours — short-range links, exactly the bounded-degree setting the
// paper motivates with molecules/cells/nano-robots). Each sensor votes
// yes (label 0) or no (label 1). The DAf automaton of Proposition 6.3
// decides "yes-votes >= no-votes" by stable consensus — even under the
// fully synchronous deterministic schedule, with no randomness anywhere.
//
//   $ ./sensor_grid_majority [width] [height] [yes_votes]
#include <cstdio>
#include <cstdlib>

#include "dawn/graph/generators.hpp"
#include "dawn/protocols/majority_bounded.hpp"
#include "dawn/sched/scheduler.hpp"
#include "dawn/semantics/simulate.hpp"
#include "dawn/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace dawn;

  const int w = argc > 1 ? std::atoi(argv[1]) : 4;
  const int h = argc > 2 ? std::atoi(argv[2]) : 3;
  const int yes = argc > 3 ? std::atoi(argv[3]) : w * h / 2 + 1;
  if (w < 3 || h < 3 || yes < 0 || yes > w * h) {
    std::fprintf(stderr, "usage: %s [width>=3] [height>=3] [yes_votes]\n",
                 argv[0]);
    return 1;
  }

  // Scatter the votes over the torus.
  std::vector<Label> votes(static_cast<std::size_t>(w * h), 1);
  Rng rng(2024);
  for (int placed = 0; placed < yes;) {
    const std::size_t at = rng.index(votes.size());
    if (votes[at] == 1) {
      votes[at] = 0;
      ++placed;
    }
  }
  const Graph g = make_grid(w, h, votes, /*torus=*/true);

  std::printf("torus %dx%d (degree 4), %d yes / %d no\n", w, h, yes,
              w * h - yes);

  // The Section 6.1 automaton: coefficients (+1, -1), degree bound 4.
  const auto automaton = make_majority_bounded(/*k=*/4);
  std::printf("automaton: DAf, counting bound %d, E = %d\n\n",
              automaton.machine->beta(), automaton.enc.E);

  for (auto& sched : make_adversary_battery(7)) {
    SimulateOptions opts;
    opts.max_steps = 30'000'000;
    opts.stable_window = 500'000;
    const SimulateResult r = simulate(*automaton.machine, g, *sched, opts);
    std::printf("  %-18s -> %-7s %s(stable from step %llu)\n",
                sched->name().c_str(),
                r.verdict == Verdict::Accept ? "yes-win" : "no-win",
                r.converged ? "" : "[NOT CONVERGED] ",
                static_cast<unsigned long long>(r.convergence_step));
  }
  std::printf("\nexpected: %s\n", yes >= w * h - yes ? "yes-win" : "no-win");
  return 0;
}
