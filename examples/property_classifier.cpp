// Property classifier — Figure 1 as a tool.
//
// For a battery of labelling predicates, reports the property classes of
// the paper's classification (Trivial / Cutoff(1) / Cutoff / ISM / none of
// these) as checked on a finite window, and reads off which automata
// classes can decide each predicate on arbitrary and on bounded-degree
// graphs.
//
//   $ ./property_classifier
#include <cstdio>
#include <string>
#include <vector>

#include "dawn/graph/generators.hpp"
#include "dawn/props/classes.hpp"
#include "dawn/props/predicates.hpp"
#include "dawn/protocols/exists_label.hpp"
#include "dawn/semantics/decision.hpp"
#include "dawn/util/table.hpp"

int main() {
  using namespace dawn;

  const std::int64_t bound = 10;
  const std::vector<LabellingPredicate> predicates = {
      {"always-true", 2, [](const LabelCount&) { return true; }},
      pred_exists(0, 2),
      pred_threshold(0, 3, 2),
      pred_majority_ge(0, 1, 2),
      pred_mod(0, 2, 0, 2),
      pred_homogeneous({2, -3}),
      pred_divides(0, 1, 2),
      pred_prime_size(2),
  };

  Table table({"predicate", "trivial", "cutoff", "ISM",
               "weakest class, arbitrary", "weakest class, degree<=k"});
  for (const auto& p : predicates) {
    const bool trivial = is_trivial(p, bound);
    const std::int64_t cutoff = least_cutoff(p, bound);
    const bool ism = is_ism(p, bound, 4);

    // Figure 1, read off the classification (window evidence).
    std::string arbitrary, bounded;
    if (trivial) {
      arbitrary = bounded = "any (incl. halting)";
    } else if (cutoff == 1) {
      arbitrary = "dAf";
      bounded = "dAf";
    } else if (cutoff > 1) {
      arbitrary = "dAF";
      bounded = "dAF/DAF";
    } else {
      arbitrary = "DAF (if in NL)";
      bounded = ism ? "DAf (if homog. threshold)" : "dAF/DAF (if in NSPACE(n))";
    }

    table.add_row({p.name, trivial ? "yes" : "no",
                   cutoff < 0 ? "none<=" + std::to_string(bound)
                              : std::to_string(cutoff),
                   ism ? "yes" : "no", arbitrary, bounded});
  }
  table.print();
  std::printf(
      "\n(window: label counts <= %lld; 'none' = refuted on the window, "
      "class columns follow Figure 1)\n",
      static_cast<long long>(bound));

  // Spot-check one classification with the unified decider: exists(0) is
  // Cutoff(1), so the flooding automaton decides it on every topology.
  // dawn::decide routes each instance to the right engine automatically.
  const auto flood = make_exists_label(0, 2);
  std::printf("\nexists(0) via dawn::decide:\n");
  for (const auto& [name, g] :
       {std::pair<const char*, Graph>{"clique", make_clique({0, 1, 1, 1})},
        {"star", make_star(1, {0, 1, 1})},
        {"cycle", make_cycle({1, 1, 0, 1, 1})}}) {
    const DecisionReport r = decide(*flood, g);
    std::printf("  %-6s -> %-6s via %s\n", name,
                to_string(r.decision).c_str(), to_string(r.method).c_str());
  }
  return 0;
}
