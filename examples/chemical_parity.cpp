// Chemical parity — an NL predicate on a well-mixed solution, via the
// Lemma 5.1 pipeline.
//
// Molecules in a well-mixed solution interact pairwise at random (the
// population-protocol / chemical-reaction-network setting: a clique with
// pseudo-stochastic scheduling). The question "is the number of X-molecules
// even?" admits no cutoff, so by the paper's classification NO dAF automaton
// decides it — but DAF = NL does. We build the DAF automaton from a strong
// broadcast protocol through the token/step/reset pipeline and watch it
// stabilise.
//
//   $ ./chemical_parity [num_x] [num_other]
#include <cstdio>
#include <cstdlib>

#include "dawn/extensions/broadcast_engine.hpp"
#include "dawn/graph/generators.hpp"
#include "dawn/props/classes.hpp"
#include "dawn/props/predicates.hpp"
#include "dawn/protocols/parity_strong.hpp"
#include "dawn/sched/scheduler.hpp"
#include "dawn/semantics/simulate.hpp"

int main(int argc, char** argv) {
  using namespace dawn;

  const int num_x = argc > 1 ? std::atoi(argv[1]) : 3;
  const int num_other = argc > 2 ? std::atoi(argv[2]) : 2;
  if (num_x < 0 || num_other < 0 || num_x + num_other < 3) {
    std::fprintf(stderr, "usage: %s [num_x] [num_other] (>= 3 total)\n",
                 argv[0]);
    return 1;
  }

  const LabelCount L{num_x, num_other};
  const auto pred = pred_mod(0, 2, 0, 2);  // #X even?
  std::printf("solution: %d X-molecules, %d inert molecules\n", num_x,
              num_other);
  std::printf("predicate '#X even' has no cutoff on [0,8]^2: %s\n\n",
              least_cutoff(pred, 8) == -1 ? "confirmed" : "REFUTED?");

  // Ground truth: the abstract strong-broadcast protocol, decided exactly
  // on counted configurations.
  const auto proto = make_mod_counter_protocol(2, 0, 0, 2);
  const auto overlay = strong_protocol_as_overlay(proto);
  const auto exact = decide_overlay_strong_counted(*overlay, L);
  std::printf("abstract protocol (exact, counted): %s\n",
              to_string(exact.decision).c_str());

  // The compiled DAF automaton: every molecule starts with a token; tokens
  // collide and reset until one survives, which then serialises the
  // broadcasts.
  const auto daf = make_mod_counter_daf(2, 0, 0, 2);
  const Graph g = make_clique(labels_from_count(L));
  RandomExclusiveScheduler sched(99);
  SimulateOptions opts;
  opts.max_steps = 20'000'000;
  opts.stable_window = 500'000;
  const SimulateResult r = simulate(*daf.machine, g, sched, opts);
  std::printf("compiled DAF automaton (simulated):  %s %s\n",
              r.verdict == Verdict::Accept ? "accept" : "reject",
              r.converged ? "" : "[not converged]");
  std::printf("expected: %s\n", pred(L) ? "accept (even)" : "reject (odd)");
  return 0;
}
