// Verify-your-own-protocol workbench — the downstream-user workflow.
//
// Suppose you designed a distributed automaton and claim it decides some
// labelling predicate. This example shows the library's verification
// pipeline on a deliberately *buggy* variant next to a correct one:
//
//   1. exact verification over a window of inputs and topologies
//      (bottom-SCC decision — counterexamples are definitive);
//   2. the symbolic cutoff analysis (what the automaton can possibly
//      decide: every dAF automaton has a finite cutoff, so if your target
//      predicate has none, no fix will ever work);
//   3. a state-space census (how heavy is the automaton in practice).
//
//   $ ./verify_workbench
#include <cstdio>
#include <memory>

#include "dawn/graph/generators.hpp"
#include "dawn/props/classes.hpp"
#include "dawn/props/predicates.hpp"
#include "dawn/semantics/decision.hpp"
#include "dawn/symbolic/cutoff.hpp"
#include "dawn/trace/census.hpp"
#include "dawn/verify/verify.hpp"

using namespace dawn;

namespace {

// Correct: flooding decides "some node carries label 1".
std::shared_ptr<Machine> flooding() {
  FunctionMachine::Spec spec;
  spec.beta = 1;
  spec.num_labels = 2;
  spec.num_states = 2;
  spec.init = [](Label l) { return static_cast<State>(l); };
  spec.step = [](State s, const Neighbourhood& n) {
    return s == 0 && n.count(1) > 0 ? State{1} : s;
  };
  spec.verdict = [](State s) {
    return s == 1 ? Verdict::Accept : Verdict::Reject;
  };
  return std::make_shared<FunctionMachine>(spec);
}

// Buggy: the flood also retreats (a lit node with a dark neighbour goes
// dark) — the classic "forgot monotonicity" mistake; runs never stabilise.
std::shared_ptr<Machine> buggy_flooding() {
  FunctionMachine::Spec spec;
  spec.beta = 1;
  spec.num_labels = 2;
  spec.num_states = 2;
  spec.init = [](Label l) { return static_cast<State>(l); };
  spec.step = [](State s, const Neighbourhood& n) {
    if (s == 0 && n.count(1) > 0) return State{1};
    if (s == 1 && n.count(0) > 0) return State{0};
    return s;
  };
  spec.verdict = [](State s) {
    return s == 1 ? Verdict::Accept : Verdict::Reject;
  };
  return std::make_shared<FunctionMachine>(spec);
}

}  // namespace

int main() {
  const auto pred = pred_exists(1, 2);
  VerifyOptions opts;
  opts.count_bound = 3;
  opts.check_synchronous = true;

  std::printf("== correct protocol ==\n");
  {
    const auto m = flooding();
    const auto report = verify_machine(*m, pred, opts);
    std::printf("verification: %s\n", report.summary().c_str());
    const auto analysis = analyse_cutoff(*m);
    std::printf("symbolic cutoff: m=%lld K=%lld (Cutoff(%lld) is what this "
                "automaton family can decide)\n",
                static_cast<long long>(analysis->m),
                static_cast<long long>(analysis->K),
                static_cast<long long>(analysis->m));
    const auto census =
        census_random_run(*m, make_cycle({0, 0, 1, 0, 0, 0}), 100'000);
    std::printf("census on a 6-ring, 100k steps: %zu states, %zu configs\n",
                census.distinct_states, census.distinct_configs);
  }

  std::printf("\n== buggy protocol (flood retreats) ==\n");
  {
    const auto m = buggy_flooding();
    const auto report = verify_machine(*m, pred, opts);
    std::printf("verification: %s\n", report.summary().c_str());
    std::printf("(the Inconsistent verdicts are the bug: runs flip between "
                "consensuses forever)\n");
  }

  std::printf("\n== single instances through the unified decider ==\n");
  {
    // dawn::decide picks the engine per topology: counted semantics on the
    // clique, the sharded parallel explicit engine on the ring.
    const auto m = flooding();
    for (const auto& [name, g] :
         {std::pair<const char*, Graph>{"clique", make_clique({0, 0, 1, 0})},
          {"ring", make_cycle({0, 0, 1, 0, 0, 0})}}) {
      const DecisionReport r = decide(*m, g);
      std::printf("%s: %s via %s (%zu configs, %zu bottom SCCs)\n", name,
                  to_string(r.decision).c_str(), to_string(r.method).c_str(),
                  r.configs_explored, r.num_bottom_sccs);
    }
    // A starved budget is reported as config-cap, not as a counterexample.
    DecisionRequest req;
    req.budget = {.max_configs = 4, .max_threads = 1, .deadline_ms = 0};
    const DecisionReport capped =
        decide(*m, make_cycle({0, 0, 1, 0, 0, 0}), req);
    std::printf("starved budget: %s (%s)\n",
                to_string(capped.decision).c_str(),
                to_string(capped.unknown_reason).c_str());
    VerifyOptions tiny = opts;
    tiny.budget = {.max_configs = 4, .max_threads = 1, .deadline_ms = 0};
    tiny.check_synchronous = false;
    const auto report = verify_machine(*m, pred, tiny);
    std::printf("verify under the starved budget: %s\n",
                report.summary().c_str());
  }

  std::printf("\n== a predicate no dAF automaton can decide ==\n");
  {
    const auto maj = pred_majority_ge(0, 1, 2);
    std::printf("majority admits no cutoff on [0,8]^2: %s => by Lemma 3.5 "
                "stop looking for a dAF automaton\n",
                least_cutoff(maj, 8) == -1 ? "confirmed" : "?!");
  }
  return 0;
}
