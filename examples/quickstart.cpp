// Quickstart: define a distributed automaton, run it under different
// schedulers, and decide an input exactly.
//
// The automaton is the flooding protocol ("is any node labelled a?") — the
// canonical dAf automaton: non-counting, stable-consensus acceptance,
// correct under *adversarial* scheduling.
//
//   $ ./quickstart
#include <cstdio>

#include "dawn/graph/generators.hpp"
#include "dawn/protocols/exists_label.hpp"
#include "dawn/sched/scheduler.hpp"
#include "dawn/semantics/decision.hpp"
#include "dawn/semantics/simulate.hpp"
#include "dawn/semantics/sync_run.hpp"

int main() {
  using namespace dawn;

  // A 12-node ring; labels: 0 = blank, 1 = "a". One node carries the a.
  std::vector<Label> labels(12, 0);
  labels[7] = 1;
  const Graph g = make_cycle(labels);

  // The automaton: each node is lit iff it carries the label or has seen a
  // lit neighbour; lit = accept, dark = reject. β = 1 (non-counting).
  const auto automaton = make_exists_label(/*target=*/1, /*num_labels=*/2);

  std::printf("graph: ring of %d nodes, one labelled 'a'\n\n", g.n());

  // 1. Simulate under a battery of fair schedulers (including adversarial
  //    ones). For a consistent automaton every fair run gives one verdict.
  for (auto& sched : make_adversary_battery(/*seed=*/1)) {
    SimulateOptions opts;
    opts.max_steps = 200'000;
    opts.stable_window = 5'000;
    const SimulateResult r = simulate(*automaton, g, *sched, opts);
    std::printf("  %-18s -> %-7s (consensus stable from step %llu)\n",
                sched->name().c_str(),
                r.verdict == Verdict::Accept ? "accept" : "reject",
                static_cast<unsigned long long>(r.convergence_step));
  }

  // 2. Decide exactly. Pseudo-stochastic semantics = bottom SCCs of the
  //    configuration graph; adversarial semantics (for consistent automata)
  //    = the synchronous run's cycle.
  const DecisionReport exact = decide(*automaton, g);
  const auto sync = decide_synchronous(*automaton, g);
  std::printf("\nexact pseudo-stochastic decision: %s via %s "
              "(%zu configurations)\n",
              to_string(exact.decision).c_str(),
              to_string(exact.method).c_str(), exact.configs_explored);
  std::printf("synchronous-run decision:         %s (prefix %llu, cycle %llu)\n",
              to_string(sync.decision).c_str(),
              static_cast<unsigned long long>(sync.prefix_length),
              static_cast<unsigned long long>(sync.cycle_length));
  return 0;
}
