// dawn_cli — run any of the paper's protocols on any input from the
// command line.
//
//   dawn_cli <protocol> <topology> <labels> [options]
//
//   protocols:
//     exists:L            some node carries label L              (dAf)
//     threshold:L:K       at least K nodes carry label L         (dAF)
//     mod:L:M:R           #L ≡ R (mod M)                         (DAF)
//     majority-pp         #label0 > #label1, cliques, no ties    (DAF)
//     majority:K          #label0 >= #label1, degree <= K        (DAf)
//   topologies: cycle | line | clique | star | grid:WxH | torus:WxH
//   labels: comma-separated, e.g. 0,1,0,0
//   options:
//     --exact             exact decision (pseudo-stochastic bottom-SCC);
//                         default for small inputs
//     --simulate          simulation under the adversary battery
//     --trace N           print the first N steps of a round-robin run
//     --metrics           collect run metrics and print the merged snapshot
//                         (implies --simulate)
//     --trace-jsonl PATH  write a structured JSONL event trace of the first
//                         simulated run to PATH (implies --simulate)
//     --progress[=MS]     live heartbeat one-liners on stderr every MS
//                         milliseconds (default 500) while the exact
//                         decision runs (implies --exact)
//     --progress-jsonl P  also stream the heartbeat records to P, one JSON
//                         object per line
//     --trace-chrome P    write a Chrome trace-event JSON (phase spans) of
//                         the exact decision to P; load in chrome://tracing
//                         or Perfetto, validate with tools/dawn_trace_check
//                         (implies --exact)
//
// Examples:
//   dawn_cli exists:1 cycle 0,0,1,0 --exact
//   dawn_cli majority:2 cycle 0,1,0,1,0 --simulate
//   dawn_cli mod:0:2:0 clique 0,0,1 --simulate
//   dawn_cli majority:2 cycle 0,1,0,1,0 --metrics --trace-jsonl run.jsonl
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dawn/graph/generators.hpp"
#include "dawn/obs/metrics.hpp"
#include "dawn/obs/progress.hpp"
#include "dawn/obs/telemetry.hpp"
#include "dawn/obs/trace_log.hpp"
#include "dawn/protocols/exists_label.hpp"
#include "dawn/protocols/majority_bounded.hpp"
#include "dawn/protocols/parity_strong.hpp"
#include "dawn/protocols/pp_majority.hpp"
#include "dawn/protocols/threshold_daf.hpp"
#include "dawn/sched/scheduler.hpp"
#include "dawn/semantics/decision.hpp"
#include "dawn/semantics/simulate.hpp"
#include "dawn/trace/recorder.hpp"
#include "dawn/util/parse.hpp"

using namespace dawn;

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream in(s);
  std::string item;
  while (std::getline(in, item, sep)) out.push_back(item);
  return out;
}

[[noreturn]] void usage(const char* argv0, const std::string& why = "") {
  if (!why.empty()) std::fprintf(stderr, "error: %s\n\n", why.c_str());
  std::fprintf(stderr,
               "usage: %s <protocol> <topology> <labels> "
               "[--exact|--simulate] [--trace N] [--metrics] "
               "[--trace-jsonl PATH] [--progress[=MS]] "
               "[--progress-jsonl PATH] [--trace-chrome PATH]\n"
               "  protocols: exists:L  threshold:L:K  mod:L:M:R  "
               "majority-pp  majority:K\n"
               "  topologies: cycle line clique star grid:WxH torus:WxH\n"
               "  labels: comma-separated, e.g. 0,1,0,0\n",
               argv0);
  std::exit(2);
}

// atoi turned typos into silent zeros ("exists:x" ran exists:0); every
// numeric token goes through the checked parser and names itself on error.
int num(const char* argv0, const std::string& what, const std::string& token,
        std::int64_t lo, std::int64_t hi) {
  const auto v = parse_int(token, lo, hi);
  if (!v) {
    usage(argv0, what + " needs an integer in [" + std::to_string(lo) + ", " +
                     std::to_string(hi) + "], got '" + token + "'");
  }
  return static_cast<int>(*v);
}

struct Parsed {
  std::shared_ptr<Machine> machine;
  std::string description;
  int num_labels = 2;
};

Parsed parse_protocol(const std::string& spec, const char* argv0) {
  const auto parts = split(spec, ':');
  Parsed out;
  if (parts[0] == "exists" && parts.size() == 2) {
    const Label l = num(argv0, "exists:L", parts[1], 0, 63);
    out.num_labels = l + 1 < 2 ? 2 : l + 1;
    out.machine = make_exists_label(l, out.num_labels);
    out.description = "flooding (dAf): exists label " + parts[1];
  } else if (parts[0] == "threshold" && parts.size() == 3) {
    const Label l = num(argv0, "threshold:L", parts[1], 0, 63);
    const int k = num(argv0, "threshold K", parts[2], 1, 1 << 20);
    out.num_labels = l + 1 < 2 ? 2 : l + 1;
    out.machine = make_threshold_daf(k, l, out.num_labels);
    out.description =
        "Lemma C.5 (dAF): #label" + parts[1] + " >= " + parts[2];
  } else if (parts[0] == "mod" && parts.size() == 4) {
    const Label l = num(argv0, "mod:L", parts[1], 0, 63);
    const int m = num(argv0, "mod M", parts[2], 2, 1 << 20);
    const int r = num(argv0, "mod R", parts[3], 0, m - 1);
    out.num_labels = l + 1 < 2 ? 2 : l + 1;
    out.machine = make_mod_counter_daf(m, r, l, out.num_labels).machine;
    out.description = "Lemma 5.1 pipeline (DAF): #label" + parts[1] + " = " +
                      parts[3] + " mod " + parts[2];
  } else if (parts[0] == "majority-pp" && parts.size() == 1) {
    out.num_labels = 2;
    out.machine = make_majority_daf(0, 1, 2);
    out.description =
        "population protocol via Lemma 4.10 (DAF): #l0 > #l1, cliques, "
        "no ties";
  } else if (parts[0] == "majority" && parts.size() == 2) {
    const int k = num(argv0, "majority:K", parts[1], 1, 1 << 20);
    out.num_labels = 2;
    out.machine = make_majority_bounded(k).machine;
    out.description = "Section 6.1 (DAf): #l0 >= #l1 on degree <= " + parts[1];
  } else {
    usage(argv0, "unknown protocol: " + spec);
  }
  return out;
}

Graph parse_topology(const std::string& spec, const std::vector<Label>& labels,
                     const char* argv0) {
  const auto parts = split(spec, ':');
  if (parts[0] == "cycle") return make_cycle(labels);
  if (parts[0] == "line") return make_line(labels);
  if (parts[0] == "clique") return make_clique(labels);
  if (parts[0] == "star") {
    std::vector<Label> leaves(labels.begin() + 1, labels.end());
    return make_star(labels.front(), leaves);
  }
  if ((parts[0] == "grid" || parts[0] == "torus") && parts.size() == 2) {
    const auto dims = split(parts[1], 'x');
    if (dims.size() != 2) usage(argv0, "grid needs WxH");
    return make_grid(num(argv0, "grid W", dims[0], 2, 1 << 15),
                     num(argv0, "grid H", dims[1], 2, 1 << 15), labels,
                     parts[0] == "torus");
  }
  usage(argv0, "unknown topology: " + spec);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) usage(argv[0]);

  bool exact = false, simulate_mode = false, want_metrics = false;
  bool want_progress = false;
  std::uint64_t trace_steps = 0;
  std::uint64_t progress_ms = 500;
  std::string trace_jsonl, trace_chrome, progress_jsonl;
  for (int i = 4; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--exact")) {
      exact = true;
    } else if (!std::strcmp(argv[i], "--simulate")) {
      simulate_mode = true;
    } else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc) {
      trace_steps = static_cast<std::uint64_t>(
          num(argv[0], "--trace", argv[++i], 1, 1 << 30));
    } else if (!std::strcmp(argv[i], "--metrics")) {
      want_metrics = true;
      simulate_mode = true;
    } else if (!std::strcmp(argv[i], "--trace-jsonl") && i + 1 < argc) {
      trace_jsonl = argv[++i];
      simulate_mode = true;
    } else if (!std::strcmp(argv[i], "--progress")) {
      want_progress = true;
      exact = true;
    } else if (!std::strncmp(argv[i], "--progress=", 11)) {
      progress_ms = static_cast<std::uint64_t>(
          num(argv[0], "--progress", argv[i] + 11, 1, 1 << 30));
      want_progress = true;
      exact = true;
    } else if (!std::strcmp(argv[i], "--progress-jsonl") && i + 1 < argc) {
      progress_jsonl = argv[++i];
      want_progress = true;
      exact = true;
    } else if (!std::strcmp(argv[i], "--trace-chrome") && i + 1 < argc) {
      trace_chrome = argv[++i];
      exact = true;
    } else {
      usage(argv[0], std::string("unknown option: ") + argv[i]);
    }
  }

  Parsed protocol = parse_protocol(argv[1], argv[0]);

  std::vector<Label> labels;
  for (const auto& tok : split(argv[3], ',')) {
    const Label l = num(argv[0], "label", tok, 0, 63);
    labels.push_back(l);
    if (l + 1 > protocol.num_labels) {
      usage(argv[0], "label " + tok + " outside the protocol's alphabet");
    }
  }
  if (labels.size() < 3) usage(argv[0], "need at least 3 nodes");

  const Graph g = parse_topology(argv[2], labels, argv[0]);
  std::printf("protocol: %s\n", protocol.description.c_str());
  std::printf("input: %s, n=%d, max degree %d\n", argv[2], g.n(),
              g.max_degree());

  if (!exact && !simulate_mode) exact = g.n() <= 6;

  if (trace_steps > 0) {
    std::printf("\nround-robin trace (committed projection):\n%s\n",
                record_round_robin(*protocol.machine, g, trace_steps, true)
                    .c_str());
  }

  if (exact) {
    DecisionRequest req;
    req.budget = {.max_configs = 4'000'000, .max_threads = 0, .deadline_ms = 0};

    // Optional telemetry around the decision. The sinks only observe — the
    // report is bit-identical with or without them (docs/OBSERVABILITY.md).
    obs::SpanLog span_log;
    obs::ExploreProgress progress;
    obs::Telemetry tel;
    if (!trace_chrome.empty()) tel.spans = &span_log;
    if (want_progress) tel.progress = &progress;
    std::unique_ptr<obs::ProgressReporter> reporter;
    if (want_progress) {
      obs::ProgressReporter::Options popts;
      popts.interval_ms = progress_ms;
      popts.stderr_line = true;
      popts.jsonl_path = progress_jsonl;
      reporter = std::make_unique<obs::ProgressReporter>(progress, popts);
      reporter->start();
    }

    DecisionReport r;
    {
      const obs::TelemetryScope telemetry_scope(tel);
      r = decide(*protocol.machine, g, req);
    }
    if (reporter != nullptr) {
      reporter->stop();
      if (!progress_jsonl.empty()) {
        if (reporter->write_failed()) {
          std::fprintf(stderr, "progress-jsonl: write failed: %s\n",
                       progress_jsonl.c_str());
          return 1;
        }
        std::printf("wrote %zu heartbeat records to %s\n",
                    reporter->records().size(), progress_jsonl.c_str());
      }
    }
    std::printf("exact decision: %s via %s (%zu configurations explored)\n",
                to_string(r.decision).c_str(), to_string(r.method).c_str(),
                r.configs_explored);
    if (!r.memory.empty()) {
      std::printf("memory: %s\n", r.memory.to_json().dump(0).c_str());
    }
    if (!trace_chrome.empty()) {
      std::string error;
      if (obs::dump_chrome_trace(span_log, trace_chrome, &error)) {
        std::printf("wrote %zu phase spans to %s%s\n", span_log.size(),
                    trace_chrome.c_str(),
                    span_log.dropped() != 0 ? " (some spans dropped)" : "");
      } else {
        std::fprintf(stderr, "trace-chrome: %s\n", error.c_str());
        return 1;
      }
    }
    if (r.decision == Decision::Unknown) {
      std::printf("(%s — try --simulate)\n",
                  to_string(r.unknown_reason).c_str());
    }
  }
  if (simulate_mode || !exact) {
    obs::RunMetrics merged;
    obs::TraceLog trace;
    bool first_run = true;
    for (auto& sched : make_adversary_battery(1)) {
      SimulateOptions opts;
      opts.max_steps = 30'000'000;
      opts.stable_window = 200'000;
      opts.collect_metrics = want_metrics;
      // The JSONL trace captures one run (the battery's first); traces are
      // per-run streams, not aggregates.
      if (!trace_jsonl.empty() && first_run) opts.trace = &trace;
      first_run = false;
      const auto r = simulate(*protocol.machine, g, *sched, opts);
      merged.merge(r.metrics);
      std::printf("  %-18s -> %s%s\n", sched->name().c_str(),
                  r.verdict == Verdict::Accept
                      ? "accept"
                      : (r.verdict == Verdict::Reject ? "reject" : "?"),
                  r.converged ? "" : " [not converged]");
    }
    if (want_metrics) {
      std::printf("\nmetrics (merged over the scheduler battery):\n%s\n",
                  merged.to_json().dump(2).c_str());
    }
    if (!trace_jsonl.empty()) {
      std::string error;
      if (trace.write_file(trace_jsonl, &error)) {
        std::printf("\nwrote %zu trace events to %s%s\n", trace.size(),
                    trace_jsonl.c_str(),
                    trace.truncated() ? " (truncated)" : "");
      } else {
        std::fprintf(stderr, "trace-jsonl: %s\n", error.c_str());
        return 1;
      }
    }
  }
  return 0;
}
